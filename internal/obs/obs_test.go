package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestDisabledTracerZeroAlloc pins the facade's core guarantee: a full
// span lifecycle — Start, attribute construction, End with attrs — on
// the disabled (nil) tracer performs zero heap allocations.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("solve")
		sp.End(Int("stages", 250), Float("cost", 1.5), String("strategy", "kaware"), Bool("ok", true))
	})
	if allocs != 0 {
		t.Fatalf("disabled span lifecycle allocates %v per run, want 0", allocs)
	}
	// NewTracer with no live sinks must also collapse to the disabled
	// tracer, so conditional wiring stays allocation-free.
	tr = NewTracer(nil, nil)
	if tr.Enabled() {
		t.Fatal("tracer over no sinks reports enabled")
	}
	allocs = testing.AllocsPerRun(1000, func() {
		sp := tr.Start("solve")
		sp.End(Int("stages", 250))
	})
	if allocs != 0 {
		t.Fatalf("no-sink span lifecycle allocates %v per run, want 0", allocs)
	}
}

func TestAttrPayloads(t *testing.T) {
	if got := Int("n", -7).Value(); got != int64(-7) {
		t.Errorf("Int payload = %v", got)
	}
	if got := Float("f", 2.25).Value(); got != 2.25 {
		t.Errorf("Float payload = %v", got)
	}
	if got := String("s", "merge").Value(); got != "merge" {
		t.Errorf("String payload = %v", got)
	}
	if got := Bool("b", true).Value(); got != true {
		t.Errorf("Bool payload = %v", got)
	}
	if got := Bool("b", false).Value(); got != false {
		t.Errorf("Bool payload = %v", got)
	}
}

// TestJSONLRoundTrip pins that spans written by the JSONL sink decode
// back into equivalent records: same names, durations, and typed
// attribute payloads (integral floats come back as ints — JSON has one
// number type — so the fixture uses a fractional float).
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	tr := NewTracer(jw)

	sp := tr.Start("matrix.build")
	time.Sleep(time.Millisecond)
	sp.End(Int("stages", 250), Int("configs", 7), Bool("ok", true))
	sp = tr.Start("ranking.expand")
	sp.End(Float("frontier_ratio", 0.5), String("strategy", "ranking"))
	sp = tr.Start("bare")
	sp.End()
	if err := jw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("round-tripped %d records, want 3", len(recs))
	}
	byKey := func(rec SpanRecord) map[string]any {
		out := make(map[string]any, len(rec.Attrs))
		for _, a := range rec.Attrs {
			out[a.Key] = a.Value()
		}
		return out
	}
	first := recs[0]
	if first.Name != "matrix.build" || first.Dur < time.Millisecond {
		t.Errorf("first record = %q dur %v", first.Name, first.Dur)
	}
	if first.Start.IsZero() {
		t.Error("start time lost in round trip")
	}
	attrs := byKey(first)
	if attrs["stages"] != int64(250) || attrs["configs"] != int64(7) || attrs["ok"] != true {
		t.Errorf("first attrs = %v", attrs)
	}
	attrs = byKey(recs[1])
	if attrs["frontier_ratio"] != 0.5 || attrs["strategy"] != "ranking" {
		t.Errorf("second attrs = %v", attrs)
	}
	if len(recs[2].Attrs) != 0 {
		t.Errorf("bare span grew attrs: %v", recs[2].Attrs)
	}
}

func TestAggregatorStats(t *testing.T) {
	agg := NewAggregator()
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		agg.Emit(SpanRecord{Name: "kaware.sweep", Dur: d})
	}
	agg.Emit(SpanRecord{Name: "matrix.build", Dur: 10 * time.Millisecond})
	snap := agg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d stages, want 2", len(snap))
	}
	// Sorted by descending total: matrix.build (10ms) first.
	if snap[0].Name != "matrix.build" || snap[1].Name != "kaware.sweep" {
		t.Fatalf("snapshot order = %s, %s", snap[0].Name, snap[1].Name)
	}
	sweep := snap[1]
	if sweep.Count != 3 || sweep.Total != 6*time.Millisecond ||
		sweep.Min != time.Millisecond || sweep.Max != 3*time.Millisecond ||
		sweep.Mean() != 2*time.Millisecond {
		t.Errorf("sweep stats = %+v", sweep)
	}
	total := int64(0)
	for _, b := range sweep.Buckets {
		total += b
	}
	if total != sweep.Count {
		t.Errorf("histogram holds %d spans, count is %d", total, sweep.Count)
	}
	var sb strings.Builder
	agg.RenderSummary(&sb)
	if !strings.Contains(sb.String(), "kaware.sweep") || !strings.Contains(sb.String(), "matrix.build") {
		t.Errorf("summary missing stages:\n%s", sb.String())
	}
	agg.Reset()
	if len(agg.Snapshot()) != 0 {
		t.Error("Reset left stages behind")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Hour, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for _, c := range cases {
		if c.want < HistBuckets-1 && c.d > BucketBound(c.want) {
			t.Errorf("duration %v above its bucket bound %v", c.d, BucketBound(c.want))
		}
	}
}

// promLine matches every non-comment line of the text exposition
// format: metric{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*\{span="[^"]+"(,le="[^"]+")?\} ([0-9.e+-]+|\+Inf)$`)

// TestPrometheusExportParses pins that the exporter output follows the
// text exposition format and that the histogram is internally
// consistent (cumulative buckets, +Inf == count).
func TestPrometheusExportParses(t *testing.T) {
	agg := NewAggregator()
	for i := 0; i < 5; i++ {
		agg.Emit(SpanRecord{Name: "merge.step", Dur: time.Duration(i+1) * time.Millisecond})
	}
	agg.Emit(SpanRecord{Name: "solve", Dur: 20 * time.Millisecond})
	var sb strings.Builder
	if err := agg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()

	var prevCum = map[string]int64{}
	infSeen := map[string]int64{}
	countSeen := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as prometheus text: %q", line)
		}
		fields := strings.Fields(line)
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		span := line[strings.Index(line, `span="`)+len(`span="`):]
		span = span[:strings.IndexByte(span, '"')]
		switch {
		case strings.Contains(line, "_bucket{") && strings.Contains(line, `le="+Inf"`):
			infSeen[span] = int64(val)
		case strings.Contains(line, "_bucket{"):
			if int64(val) < prevCum[span] {
				t.Errorf("histogram for %s not cumulative at %q", span, line)
			}
			prevCum[span] = int64(val)
		case strings.Contains(line, "_count{"):
			countSeen[span] = int64(val)
		}
	}
	for _, span := range []string{"merge.step", "solve"} {
		if infSeen[span] != countSeen[span] {
			t.Errorf("%s: +Inf bucket %d != count %d", span, infSeen[span], countSeen[span])
		}
	}
	if countSeen["merge.step"] != 5 || countSeen["solve"] != 1 {
		t.Errorf("counts = %v", countSeen)
	}
}

// TestStartHTTPRejectsBadAddr pins that listener errors surface
// synchronously from StartHTTP.
func TestStartHTTPRejectsBadAddr(t *testing.T) {
	if _, err := StartHTTP("256.256.256.256:0", "", NewAggregator(), nil, nil); err == nil {
		t.Fatal("StartHTTP accepted an unlistenable address")
	}
}
