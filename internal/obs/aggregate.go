package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// HistBuckets is the number of log₂ duration buckets a stage histogram
// keeps. Bucket i counts spans with duration < 1µs·2^i; the last bucket
// is the +Inf overflow, so the range spans ~1µs to ~1 minute.
const HistBuckets = 27

// BucketBound returns the inclusive upper bound of histogram bucket i
// (the Prometheus "le" label); the last bucket is unbounded.
func BucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// bucketOf maps a duration to its histogram bucket.
func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// StageStats is the aggregate timing of one span name: count, total,
// min/max, and a log₂ duration histogram. It is a plain value; the
// aggregator hands out copies.
type StageStats struct {
	Name    string
	Count   int64
	Total   time.Duration
	Min     time.Duration
	Max     time.Duration
	Buckets [HistBuckets]int64
}

// Mean returns the average span duration.
func (s StageStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Aggregator is a Sink that folds spans into per-stage (per span name)
// histograms in process — the live extension of core.Metrics' flat
// counters. It is safe for concurrent Emit and Snapshot.
type Aggregator struct {
	mu     sync.Mutex
	stages map[string]*StageStats
}

// NewAggregator builds an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{stages: make(map[string]*StageStats)}
}

// Emit implements Sink.
func (a *Aggregator) Emit(rec SpanRecord) {
	a.mu.Lock()
	st := a.stages[rec.Name]
	if st == nil {
		st = &StageStats{Name: rec.Name, Min: rec.Dur, Max: rec.Dur}
		a.stages[rec.Name] = st
	}
	st.Count++
	st.Total += rec.Dur
	if rec.Dur < st.Min {
		st.Min = rec.Dur
	}
	if rec.Dur > st.Max {
		st.Max = rec.Dur
	}
	st.Buckets[bucketOf(rec.Dur)]++
	a.mu.Unlock()
}

// Snapshot returns a copy of every stage's stats, sorted by descending
// total time (the "where did the solve go" ordering).
func (a *Aggregator) Snapshot() []StageStats {
	a.mu.Lock()
	out := make([]StageStats, 0, len(a.stages))
	for _, st := range a.stages {
		out = append(out, *st)
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Reset clears every accumulated stage.
func (a *Aggregator) Reset() {
	a.mu.Lock()
	a.stages = make(map[string]*StageStats)
	a.mu.Unlock()
}

// RenderSummary writes a human-readable per-stage table, widest total
// first — the CLI's end-of-run trace summary.
func (a *Aggregator) RenderSummary(w io.Writer) {
	snap := a.Snapshot()
	if len(snap) == 0 {
		return
	}
	fmt.Fprintf(w, "%-28s %9s %12s %12s %12s %12s\n",
		"span", "count", "total", "mean", "min", "max")
	for _, st := range snap {
		fmt.Fprintf(w, "%-28s %9d %12s %12s %12s %12s\n",
			st.Name, st.Count, fmtDur(st.Total), fmtDur(st.Mean()), fmtDur(st.Min), fmtDur(st.Max))
	}
}

// fmtDur renders a duration rounded for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
