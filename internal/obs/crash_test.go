package obs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJSONLFlushOnCancel is the crash-ordering regression for the
// signal-teardown path: every span emitted before the run's context is
// cancelled must be durably on disk once the cancellation is processed,
// WITHOUT teardown running — the situation of a SIGTERM-cancelled
// process that exits through os.Exit or a second, uncatchable signal.
func TestJSONLFlushOnCancel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tracer, teardown, err := Setup(CLIConfig{TracePath: path, FlushCtx: ctx})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	teardownRan := false
	defer func() {
		if !teardownRan {
			teardown()
		}
	}()

	tracer.Start("crash.first").End()
	last := tracer.Start("crash.last")
	last.End(String("marker", "tail"))

	// The signal arrives: the watcher must flush the buffered tail.
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	var recs []SpanRecord
	for {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("open trace: %v", err)
		}
		recs, err = ReadJSONL(f)
		f.Close()
		if err == nil && len(recs) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("last span not flushed after cancel: %d records, err %v", len(recs), err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if recs[len(recs)-1].Name != "crash.last" {
		t.Fatalf("last flushed span = %q, want crash.last", recs[len(recs)-1].Name)
	}

	// Teardown after the cancel-flush must still close cleanly and not
	// duplicate records.
	teardown()
	teardownRan = true
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace after teardown: %v", err)
	}
	defer f.Close()
	final, err := ReadJSONL(f)
	if err != nil {
		t.Fatalf("ReadJSONL after teardown: %v", err)
	}
	if len(final) != 2 {
		t.Fatalf("got %d records after teardown, want 2", len(final))
	}
}

// TestJSONLFlushWatcherRetiredByTeardown pins that a clean (uncancelled)
// run tears down without leaking the watcher or dropping spans.
func TestJSONLFlushWatcherRetiredByTeardown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tracer, teardown, err := Setup(CLIConfig{TracePath: path, FlushCtx: ctx})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	tracer.Start("clean.span").End()
	teardown()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	recs, err := ReadJSONL(f)
	if err != nil || len(recs) != 1 || recs[0].Name != "clean.span" {
		t.Fatalf("clean teardown: recs %v, err %v", recs, err)
	}
}
