package obs

import (
	"strconv"
	"strings"
)

// The Prometheus text exposition format has two escaping contexts and
// neither matches Go's %q: HELP text escapes backslash and newline
// (quotes stay literal), label values escape backslash, double-quote,
// and newline — and nothing else, so a tab or non-ASCII byte passes
// through unmodified where %q would mangle it into \t or \u… escapes
// scrapers reject.
var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return helpEscaper.Replace(s)
}

// escapeLabel escapes a label value per the exposition format. The
// surrounding quotes are the caller's.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

// formatSeconds renders a float seconds value the way the exporters
// spell bucket bounds: shortest round-trip representation.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
