// Package obs is the solver observability layer: a tracing facade that
// costs nothing when disabled and, when enabled, emits per-stage spans
// (matrix builds, DP layer sweeps, ranking expansion batches, merge
// iterations, resilient ladder rungs, ...) to pluggable sinks — a JSONL
// trace writer, an in-process histogram aggregator, and a Prometheus-
// text/expvar exporter.
//
// The facade is designed around one hard requirement: solver hot paths
// call Start/End unconditionally, so a disabled tracer (the nil
// *Tracer, which is the default on core.Problem) must add zero
// allocations and only a pointer-nil check per span. That property is
// enforced by tests with testing.AllocsPerRun; see DESIGN.md §9 for the
// span taxonomy, the sink contract, and the overhead budget.
package obs

import (
	"math"
	"time"
)

// AttrKind discriminates the typed attribute payload.
type AttrKind uint8

// Attribute kinds.
const (
	KindInt AttrKind = iota
	KindFloat
	KindString
	KindBool
)

// Attr is one typed span attribute. Attrs are plain values — building
// one never allocates — so hot paths can construct them unconditionally
// and let a disabled span drop them for free.
type Attr struct {
	Key  string
	Kind AttrKind
	num  uint64
	str  string
}

// Int builds an int64 attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, num: uint64(v)} }

// Float builds a float64 attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Kind: KindFloat, num: floatBits(v)}
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: KindString, str: v} }

// Bool builds a bool attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.num = 1
	}
	return a
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// IntValue returns the payload of a KindInt attribute.
func (a Attr) IntValue() int64 { return int64(a.num) }

// FloatValue returns the payload of a KindFloat attribute.
func (a Attr) FloatValue() float64 { return floatFromBits(a.num) }

// StringValue returns the payload of a KindString attribute.
func (a Attr) StringValue() string { return a.str }

// BoolValue returns the payload of a KindBool attribute.
func (a Attr) BoolValue() bool { return a.num != 0 }

// Value returns the attribute payload as an interface value (allocates;
// meant for sinks and tests, not hot paths).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.IntValue()
	case KindFloat:
		return a.FloatValue()
	case KindString:
		return a.str
	case KindBool:
		return a.BoolValue()
	default:
		return nil
	}
}

// SpanRecord is one finished span as delivered to sinks. Sinks must not
// retain the Attrs slice after Emit returns: the tracer reuses nothing
// today, but the contract keeps zero-copy emission possible.
type SpanRecord struct {
	// Name identifies the span in the taxonomy (DESIGN.md §9).
	Name string
	// Start is the wall-clock start of the span.
	Start time.Time
	// Dur is the span's duration (monotonic-clock based).
	Dur time.Duration
	// Attrs are the typed attributes attached at End, in order.
	Attrs []Attr
}

// Sink receives finished spans. Implementations must be safe for
// concurrent Emit calls: the solver worker pool ends spans from many
// goroutines at once.
type Sink interface {
	Emit(rec SpanRecord)
}

// Tracer fans finished spans out to its sinks. The nil *Tracer is the
// disabled tracer: Start returns an inert Span and the whole span
// lifecycle costs two nil checks and zero allocations. Tracer methods
// are safe for concurrent use as long as the sinks are.
type Tracer struct {
	sinks []Sink
}

// NewTracer builds a tracer over the given sinks. With no sinks it
// returns nil — the disabled tracer — so callers can thread the result
// through unconditionally.
func NewTracer(sinks ...Sink) *Tracer {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return &Tracer{sinks: live}
}

// Enabled reports whether spans started on this tracer are recorded.
func (t *Tracer) Enabled() bool { return t != nil && len(t.sinks) > 0 }

// Start begins a span. On a disabled tracer it returns the inert zero
// Span without reading the clock.
func (t *Tracer) Start(name string) Span {
	if t == nil || len(t.sinks) == 0 {
		return Span{}
	}
	return Span{tracer: t, name: name, start: time.Now()}
}

// Span is one in-flight span, held by value on the caller's stack. The
// zero Span is inert: End on it is a nil check and nothing more.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time
}

// Active reports whether the span records anything, so hot paths can
// skip computing expensive attributes for a disabled tracer.
func (s Span) Active() bool { return s.tracer != nil }

// End finishes the span and emits it, with the given attributes, to
// every sink of its tracer. On the inert span it does nothing; the
// variadic attrs stay on the caller's stack (End copies them before
// handing them to sinks), so the disabled path allocates nothing.
func (s Span) End(attrs ...Attr) {
	if s.tracer == nil {
		return
	}
	rec := SpanRecord{Name: s.name, Start: s.start, Dur: time.Since(s.start)}
	if len(attrs) > 0 {
		rec.Attrs = append(make([]Attr, 0, len(attrs)), attrs...)
	}
	for _, sink := range s.tracer.sinks {
		sink.Emit(rec)
	}
}
