package obs

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGaugeSetPrometheusOutput(t *testing.T) {
	g := NewGaugeSet()
	g.Help("dyndesign_explain_ksweep_cost", "Optimal cost at each change bound.")
	g.Set("dyndesign_explain_ksweep_cost", 120.5, "k", "2")
	g.Set("dyndesign_explain_ksweep_cost", 140, "k", "1")
	g.Set("dyndesign_explain_audit_regret", 3.25, "side", "constrained")
	g.Set("dyndesign_explain_audit_regret", 9, "side", "unconstrained")
	// Overwrite keeps one series, last value wins.
	g.Set("dyndesign_explain_ksweep_cost", 118, "k", "2")

	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE dyndesign_explain_audit_regret gauge\n" +
		"dyndesign_explain_audit_regret{side=\"constrained\"} 3.25\n" +
		"dyndesign_explain_audit_regret{side=\"unconstrained\"} 9\n" +
		"# HELP dyndesign_explain_ksweep_cost Optimal cost at each change bound.\n" +
		"# TYPE dyndesign_explain_ksweep_cost gauge\n" +
		"dyndesign_explain_ksweep_cost{k=\"1\"} 140\n" +
		"dyndesign_explain_ksweep_cost{k=\"2\"} 118\n"
	if sb.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", sb.String(), want)
	}
	// Stable across calls.
	var again strings.Builder
	if err := g.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != sb.String() {
		t.Error("second render differs from first")
	}
}

func TestGaugeSetNilSafe(t *testing.T) {
	var g *GaugeSet
	g.Set("x", 1)
	g.Help("x", "h")
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("nil GaugeSet rendered %q", sb.String())
	}
}

// closeTrackingWriter records the order of writes relative to Close and
// fails writes after Close the way a real *os.File does.
type closeTrackingWriter struct {
	mu     sync.Mutex
	closed bool
	lines  strings.Builder
}

func (w *closeTrackingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("write after close")
	}
	w.lines.Write(p)
	return len(p), nil
}

func (w *closeTrackingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	return nil
}

// TestJSONLCloseFlushOrdering pins the crash-ordering guarantee: spans
// emitted before Close — including a partially filled batch still in the
// bufio buffer — are flushed to the underlying file strictly before it
// is closed, concurrent emits racing with Close never write to a closed
// file, and the surviving trace parses cleanly.
func TestJSONLCloseFlushOrdering(t *testing.T) {
	w := &closeTrackingWriter{}
	jw := NewJSONLWriter(w)

	const preClose = 100
	for i := 0; i < preClose; i++ {
		jw.Emit(SpanRecord{Name: "pre", Start: time.Unix(0, int64(i)), Dur: time.Duration(i)})
	}

	// Emits racing with Close must either land before the flush or drop.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				jw.Emit(SpanRecord{Name: "race", Dur: time.Duration(j)})
			}
		}()
	}
	if err := jw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	if err := jw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	jw.Emit(SpanRecord{Name: "post"}) // must drop, not error or write

	recs, err := ReadJSONL(strings.NewReader(w.lines.String()))
	if err != nil {
		t.Fatalf("trace does not parse after Close: %v", err)
	}
	pre := 0
	for _, r := range recs {
		if r.Name == "pre" {
			pre++
		}
		if r.Name == "post" {
			t.Error("emit after Close reached the file")
		}
	}
	if pre != preClose {
		t.Errorf("flushed %d pre-Close spans, want %d", pre, preClose)
	}
}

// TestJSONLCloseSurfacesWriteError pins that a flush failure at Close is
// reported, not swallowed.
func TestJSONLCloseSurfacesWriteError(t *testing.T) {
	w := &closeTrackingWriter{}
	w.closed = true // every write fails
	jw := NewJSONLWriter(w)
	jw.Emit(SpanRecord{Name: "doomed", Dur: time.Millisecond})
	if err := jw.Close(); err == nil {
		t.Fatal("Close swallowed the write error")
	}
}

var _ io.WriteCloser = (*closeTrackingWriter)(nil)
