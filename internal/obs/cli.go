package obs

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime/trace"
)

// CLIConfig gathers the observability settings both CLIs expose as
// flags. The zero value disables everything; Setup then returns a nil
// (disabled) tracer and a no-op teardown.
type CLIConfig struct {
	// TracePath, when non-empty, writes one JSONL span record per line
	// to this file (see DESIGN.md §9 for the format).
	TracePath string
	// MetricsAddr, when non-empty, serves Prometheus text metrics on
	// /metrics, expvar on /debug/vars, and pprof on /debug/pprof/ at
	// this address.
	MetricsAddr string
	// PprofAddr, when non-empty, serves net/http/pprof at this address.
	// It may equal MetricsAddr, in which case one server carries both.
	PprofAddr string
	// RuntimeTracePath, when non-empty, captures a runtime/trace
	// execution trace of the whole run into this file (view with
	// `go tool trace`).
	RuntimeTracePath string
	// SummaryW, when non-nil, receives the aggregator's per-stage
	// summary table at teardown (the CLIs pass os.Stderr). Ignored
	// unless TracePath or MetricsAddr enables span collection.
	SummaryW io.Writer
	// Gauges, when non-nil, is rendered on /metrics after the span
	// families — the CLIs publish explanation gauges (k-sweep curve,
	// audit regret) through it.
	Gauges *GaugeSet
	// Hists, when non-nil, is rendered on /metrics between the span and
	// gauge families — explicit latency histograms (advisord's ingest
	// and solve paths) that share the Aggregator's log2 buckets.
	Hists *HistogramSet
	// FlushCtx, when non-nil, arms crash-ordering protection for the
	// JSONL trace sink: the moment the context is cancelled (the
	// signal path) a watcher flushes the writer's buffer to disk, so
	// every span emitted before the signal survives even if the
	// process later exits through a path that skips teardown
	// (os.Exit, a second uncatchable signal). Teardown still owns the
	// close.
	FlushCtx context.Context
}

// enabled reports whether any span-collecting sink is configured.
// PprofAddr and RuntimeTracePath alone do not enable the tracer: they
// observe the runtime, not solver spans.
func (c CLIConfig) enabled() bool {
	return c.TracePath != "" || c.MetricsAddr != ""
}

// Setup wires the configured sinks and servers and returns the tracer
// (nil when no span sink is configured — the zero-overhead disabled
// state) plus a teardown that flushes the JSONL writer, stops the HTTP
// servers and runtime trace, and renders the summary. Teardown is safe
// to call exactly once; on error Setup has already undone any partial
// wiring.
func Setup(cfg CLIConfig) (tracer *Tracer, teardown func(), err error) {
	var cleanups []func()
	unwind := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}

	var sinks []Sink
	var agg *Aggregator
	if cfg.enabled() {
		agg = NewAggregator()
		sinks = append(sinks, agg)
	}
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			unwind()
			return nil, nil, fmt.Errorf("obs: creating trace file: %w", err)
		}
		jw := NewJSONLWriter(f)
		sinks = append(sinks, jw)
		cleanups = append(cleanups, func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: closing trace file: %v\n", err)
			}
		})
		if cfg.FlushCtx != nil {
			// Flush the tail buffer the moment the run is cancelled;
			// Flush and the eventual Close serialize on the writer's
			// mutex, so the watcher can never corrupt the teardown.
			// Flush errors are sticky and resurface at Close, which is
			// where they are reported. The watcher cleanup is appended
			// after the close cleanup so teardown (which runs in
			// reverse) retires the watcher before closing the file.
			watcherDone := make(chan struct{})
			go func() {
				select {
				case <-cfg.FlushCtx.Done():
					_ = jw.Flush()
				case <-watcherDone:
				}
			}()
			cleanups = append(cleanups, func() { close(watcherDone) })
		}
	}
	if cfg.MetricsAddr != "" || cfg.PprofAddr != "" {
		stop, err := StartHTTP(cfg.MetricsAddr, cfg.PprofAddr, agg, cfg.Hists, cfg.Gauges)
		if err != nil {
			unwind()
			return nil, nil, err
		}
		cleanups = append(cleanups, stop)
	}
	if cfg.RuntimeTracePath != "" {
		f, err := os.Create(cfg.RuntimeTracePath)
		if err != nil {
			unwind()
			return nil, nil, fmt.Errorf("obs: creating runtime trace file: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			unwind()
			return nil, nil, fmt.Errorf("obs: starting runtime trace: %w", err)
		}
		cleanups = append(cleanups, func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: closing runtime trace file: %v\n", err)
			}
		})
	}
	// The summary renders first during teardown (cleanups run in
	// reverse) so it appears before file-close diagnostics.
	if agg != nil && cfg.SummaryW != nil {
		w := cfg.SummaryW
		cleanups = append(cleanups, func() { agg.RenderSummary(w) })
	}
	return NewTracer(sinks...), unwind, nil
}
