package keyenc

import (
	"bytes"
	"testing"

	"dyndesign/internal/types"
)

// FuzzDecode asserts the key codec never panics on arbitrary bytes and
// round-trips what it accepts.
func FuzzDecode(f *testing.F) {
	f.Add(MustEncode(types.NewInt(42), types.NewString("x\x00y")))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(vals...)
		if err != nil {
			t.Fatalf("decoded key %v does not re-encode: %v", vals, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("codec not canonical: % x -> %v -> % x", data, vals, enc)
		}
	})
}
