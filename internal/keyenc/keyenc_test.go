package keyenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"dyndesign/internal/types"
)

func TestEncodeIntOrderPreserving(t *testing.T) {
	vals := []int64{math.MinInt64, -1000, -1, 0, 1, 42, 500000, math.MaxInt64}
	for i := 1; i < len(vals); i++ {
		a := MustEncode(types.NewInt(vals[i-1]))
		b := MustEncode(types.NewInt(vals[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("Encode(%d) >= Encode(%d) in byte order", vals[i-1], vals[i])
		}
	}
}

func TestEncodeStringOrderPreserving(t *testing.T) {
	vals := []string{"", "a", "aa", "ab", "b", "ba", "z", "za"}
	for i := 1; i < len(vals); i++ {
		a := MustEncode(types.NewString(vals[i-1]))
		b := MustEncode(types.NewString(vals[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("Encode(%q) >= Encode(%q) in byte order", vals[i-1], vals[i])
		}
	}
}

func TestEncodeStringWithNulBytes(t *testing.T) {
	// A string containing 0x00 must round-trip and order correctly against
	// its prefix: "a" < "a\x00" < "a\x00a" < "aa".
	vals := []string{"a", "a\x00", "a\x00a", "aa"}
	for i := 1; i < len(vals); i++ {
		a := MustEncode(types.NewString(vals[i-1]))
		b := MustEncode(types.NewString(vals[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("Encode(%q) >= Encode(%q) in byte order", vals[i-1], vals[i])
		}
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	// (1, "b") < (2, "a"): the first column dominates.
	a := MustEncode(types.NewInt(1), types.NewString("b"))
	b := MustEncode(types.NewInt(2), types.NewString("a"))
	if bytes.Compare(a, b) >= 0 {
		t.Error("composite key ordering violated across first column")
	}
	// (1, "a") < (1, "b"): ties broken by the second column.
	c := MustEncode(types.NewInt(1), types.NewString("a"))
	d := MustEncode(types.NewInt(1), types.NewString("b"))
	if bytes.Compare(c, d) >= 0 {
		t.Error("composite key ordering violated within first column")
	}
}

func TestPrefixSeekProperty(t *testing.T) {
	// Encode(v) is a prefix of Encode(v, anything): the index-seek
	// primitive depends on this.
	full := MustEncode(types.NewInt(7), types.NewInt(9))
	prefix := MustEncode(types.NewInt(7))
	if !bytes.HasPrefix(full, prefix) {
		t.Error("single-column encoding is not a prefix of the composite encoding")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	tuples := [][]types.Value{
		{types.NewInt(0)},
		{types.NewInt(math.MinInt64), types.NewInt(math.MaxInt64)},
		{types.NewString("")},
		{types.NewString("hello"), types.NewInt(-3)},
		{types.NewString("with\x00nul"), types.NewString("tail")},
	}
	for _, tu := range tuples {
		enc, err := Encode(tu...)
		if err != nil {
			t.Fatalf("Encode(%v): %v", tu, err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", tu, err)
		}
		if len(dec) != len(tu) {
			t.Fatalf("Decode arity %d != %d", len(dec), len(tu))
		}
		for i := range tu {
			if !dec[i].Equal(tu[i]) {
				t.Errorf("round trip %v -> %v at %d", tu, dec, i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{0x01, 0x00},       // truncated int
		{0x02, 'a'},        // unterminated string
		{0x02, 0x00},       // truncated escape
		{0x02, 0x00, 0x42}, // invalid escape
		{0x7F},             // unknown tag
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%x) succeeded, want error", c)
		}
	}
}

func TestEncodeInvalidValue(t *testing.T) {
	if _, err := Encode(types.Value{}); err == nil {
		t.Error("Encode of invalid value succeeded")
	}
}

func TestMustEncodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on invalid value")
		}
	}()
	MustEncode(types.Value{})
}

func TestIntOrderPreservationProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ea := MustEncode(types.NewInt(a))
		eb := MustEncode(types.NewInt(b))
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringOrderPreservationProperty(t *testing.T) {
	f := func(a, b string) bool {
		ea := MustEncode(types.NewString(a))
		eb := MustEncode(types.NewString(b))
		cmp := bytes.Compare(ea, eb)
		want := bytes.Compare([]byte(a), []byte(b))
		return sign(cmp) == sign(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompositeRoundTripProperty(t *testing.T) {
	f := func(a int64, s string, b int64) bool {
		tu := []types.Value{types.NewInt(a), types.NewString(s), types.NewInt(b)}
		dec, err := Decode(MustEncode(tu...))
		if err != nil || len(dec) != 3 {
			return false
		}
		return dec[0].Equal(tu[0]) && dec[1].Equal(tu[1]) && dec[2].Equal(tu[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
		{nil, nil},
		{[]byte{0x00}, []byte{0x01}},
		{[]byte{0xAB, 0x00, 0xFF, 0xFF}, []byte{0xAB, 0x01}},
	}
	for _, c := range cases {
		got := PrefixSuccessor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestPrefixSuccessorProperty(t *testing.T) {
	// For any prefix p and continuation c: p||c < PrefixSuccessor(p),
	// and p itself < PrefixSuccessor(p).
	f := func(p, c []byte) bool {
		succ := PrefixSuccessor(p)
		if succ == nil {
			// Only when p is empty or all 0xFF.
			for _, b := range p {
				if b != 0xFF {
					return false
				}
			}
			return true
		}
		full := append(append([]byte(nil), p...), c...)
		return bytes.Compare(full, succ) < 0 && bytes.Compare(p, succ) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixSuccessorDoesNotAliasInput(t *testing.T) {
	in := []byte{0x01, 0x02}
	out := PrefixSuccessor(in)
	out[0] = 0xEE
	if in[0] != 0x01 {
		t.Error("PrefixSuccessor aliases its input")
	}
}
