// Package keyenc provides an order-preserving binary encoding for
// composite index keys: for any two key tuples a and b,
// bytes.Compare(Encode(a), Encode(b)) equals the tuple comparison of a
// and b. The B+-tree stores and compares only these encoded byte keys,
// which keeps the tree oblivious to the type system.
//
// Encoding per value:
//
//	int64:  tag 0x01, then the value biased by flipping the sign bit and
//	        written big-endian — this makes unsigned byte order match
//	        signed integer order.
//	string: tag 0x02, then the bytes with 0x00 escaped as 0x00 0xFF,
//	        terminated by 0x00 0x00 — the terminator sorts below any
//	        continuation, so prefixes sort first, matching string order.
//
// Tags also give cross-kind determinism (ints sort before strings), though
// the engine never mixes kinds within one key position.
package keyenc

import (
	"encoding/binary"
	"fmt"

	"dyndesign/internal/types"
)

const (
	tagInt    = 0x01
	tagString = 0x02
)

// AppendValue appends the order-preserving encoding of a single value.
func AppendValue(dst []byte, v types.Value) ([]byte, error) {
	switch v.Kind {
	case types.KindInt:
		dst = append(dst, tagInt)
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.Int)^(1<<63))
		return dst, nil
	case types.KindString:
		dst = append(dst, tagString)
		for i := 0; i < len(v.Str); i++ {
			c := v.Str[i]
			if c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, c)
			}
		}
		dst = append(dst, 0x00, 0x00)
		return dst, nil
	default:
		return nil, fmt.Errorf("keyenc: cannot encode invalid value")
	}
}

// Encode encodes a tuple of values as one composite key.
func Encode(vals ...types.Value) ([]byte, error) {
	dst := make([]byte, 0, 16*len(vals))
	var err error
	for _, v := range vals {
		dst, err = AppendValue(dst, v)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// MustEncode is Encode that panics on error, for fixtures and tests.
func MustEncode(vals ...types.Value) []byte {
	k, err := Encode(vals...)
	if err != nil {
		panic(err)
	}
	return k
}

// PrefixSuccessor returns the smallest byte string that is greater than
// every string having the given prefix: the prefix with its last
// non-0xFF byte incremented and the tail truncated. It returns nil when
// no such string exists (the prefix is empty or all 0xFF), which callers
// treat as an unbounded upper limit. It is the primitive behind
// exclusive range bounds and prefix scans on encoded keys.
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			out := make([]byte, i+1)
			copy(out, prefix[:i+1])
			out[i]++
			return out
		}
	}
	return nil
}

// Decode parses a composite key back into its values. It is the inverse
// of Encode and is used by index-only scans to reconstruct column values
// without visiting the heap.
func Decode(key []byte) ([]types.Value, error) {
	return DecodeInto(nil, key)
}

// DecodeInto is Decode reusing the caller's slice (appending from
// buf[:0]) so per-entry scans allocate nothing. The returned slice
// aliases buf's storage; callers that retain values across calls must
// copy them.
func DecodeInto(buf []types.Value, key []byte) ([]types.Value, error) {
	vals := buf[:0]
	for len(key) > 0 {
		switch key[0] {
		case tagInt:
			if len(key) < 9 {
				return nil, fmt.Errorf("keyenc: truncated int key")
			}
			u := binary.BigEndian.Uint64(key[1:9])
			vals = append(vals, types.NewInt(int64(u^(1<<63))))
			key = key[9:]
		case tagString:
			key = key[1:]
			var buf []byte
			done := false
			for !done {
				if len(key) < 1 {
					return nil, fmt.Errorf("keyenc: unterminated string key")
				}
				c := key[0]
				if c != 0x00 {
					buf = append(buf, c)
					key = key[1:]
					continue
				}
				if len(key) < 2 {
					return nil, fmt.Errorf("keyenc: truncated string escape")
				}
				switch key[1] {
				case 0xFF: // escaped literal 0x00
					buf = append(buf, 0x00)
					key = key[2:]
				case 0x00: // terminator
					key = key[2:]
					done = true
				default:
					return nil, fmt.Errorf("keyenc: invalid string escape 0x00 0x%02X", key[1])
				}
			}
			vals = append(vals, types.NewString(string(buf)))
		default:
			return nil, fmt.Errorf("keyenc: unknown tag 0x%02X", key[0])
		}
	}
	return vals, nil
}
