// Package tuner answers the paper's first open question — "how to choose
// an appropriate change constraint (k)" (§8) — with two procedures:
//
//   - Cross-validation over representative traces: for each k, recommend
//     on one trace and evaluate the design (by what-if cost) on the held
//     out traces; pick the k with the best mean held-out cost. This
//     directly operationalizes the paper's notion that the input is a
//     *representative* of a workload process.
//
//   - The elbow rule on the quality-vs-k curve for the single-trace case:
//     increase k while the marginal cost reduction still exceeds a
//     threshold fraction of the unconstrained optimum.
package tuner

import (
	"context"
	"fmt"
	"math"

	"dyndesign/internal/advisor"
	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// KPoint is one point of a k-selection curve.
type KPoint struct {
	K int
	// TrainCost is the optimal cost on the training trace at this k.
	TrainCost float64
	// HoldoutCost is the mean what-if cost of the k-design on the
	// held-out traces (NaN for the elbow rule, which has none).
	HoldoutCost float64
}

// KChoice reports a k selection.
type KChoice struct {
	K      int
	Method string // "cross-validation" or "elbow"
	Curve  []KPoint
}

// CrossValidateK chooses k by leave-one-out style validation: the design
// is recommended on traces[0] for each k in [0, maxK] and costed on each
// remaining trace; the k minimizing the mean held-out cost wins. All
// traces must have the same length. At least two traces are required —
// with one, use ElbowK.
func CrossValidateK(ctx context.Context, adv *advisor.Advisor, traces []*workload.Workload, opts advisor.Options, maxK int) (*KChoice, error) {
	if len(traces) < 2 {
		return nil, fmt.Errorf("tuner: cross-validation needs at least 2 traces, got %d", len(traces))
	}
	if maxK < 0 {
		return nil, fmt.Errorf("tuner: negative maxK")
	}
	choice := &KChoice{Method: "cross-validation", K: 0}
	best := math.Inf(1)
	for k := 0; k <= maxK; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := opts
		o.K = k
		rec, err := adv.RecommendContext(ctx, traces[0], o)
		if err != nil {
			return nil, err
		}
		var held float64
		for _, tr := range traces[1:] {
			c, err := adv.EvaluateOn(rec, tr, o)
			if err != nil {
				return nil, err
			}
			held += c
		}
		held /= float64(len(traces) - 1)
		choice.Curve = append(choice.Curve, KPoint{K: k, TrainCost: rec.Solution.Cost, HoldoutCost: held})
		if held < best {
			best = held
			choice.K = k
		}
	}
	return choice, nil
}

// DefaultCaptureFraction is the elbow rule's default: pick the smallest
// k that captures this fraction of the improvement attainable between
// the static design (k = 0) and the unconstrained optimum.
const DefaultCaptureFraction = 0.6

// ElbowK chooses k from a single trace by the capture-fraction rule: the
// smallest k whose optimal cost captures at least captureFrac of the
// total improvement cost(0) − cost(unconstrained). A simple marginal-
// gain cutoff would stall on the plateaus this curve always has (useful
// changes come in pairs — switch away and back — so odd k often buys
// nothing over k−1); capturing a fraction of the total is plateau-proof.
// captureFrac defaults to DefaultCaptureFraction when <= 0; maxK caps
// the search (the unconstrained optimum's change count also caps it
// naturally).
func ElbowK(ctx context.Context, adv *advisor.Advisor, trace *workload.Workload, opts advisor.Options, maxK int, captureFrac float64) (*KChoice, error) {
	if captureFrac <= 0 {
		captureFrac = DefaultCaptureFraction
	}
	if captureFrac > 1 {
		return nil, fmt.Errorf("tuner: capture fraction %f > 1", captureFrac)
	}
	o := opts
	o.K = core.Unconstrained
	unc, err := adv.RecommendContext(ctx, trace, o)
	if err != nil {
		return nil, err
	}
	limit := unc.Solution.Changes
	if maxK >= 0 && maxK < limit {
		limit = maxK
	}
	choice := &KChoice{Method: "elbow"}
	var staticCost float64
	chosen := false
	for k := 0; k <= limit; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o.K = k
		rec, err := adv.RecommendContext(ctx, trace, o)
		if err != nil {
			return nil, err
		}
		cost := rec.Solution.Cost
		choice.Curve = append(choice.Curve, KPoint{K: k, TrainCost: cost, HoldoutCost: math.NaN()})
		if k == 0 {
			staticCost = cost
		}
		attainable := staticCost - unc.Solution.Cost
		if !chosen && (attainable <= 0 || staticCost-cost >= captureFrac*attainable) {
			choice.K = k
			chosen = true
		}
	}
	if !chosen {
		choice.K = limit
	}
	return choice, nil
}
