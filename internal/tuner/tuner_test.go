package tuner

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dyndesign/internal/advisor"
	"dyndesign/internal/candidates"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/workload"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

const (
	testRows  = 30000
	testBlock = 50
)

func fixture(t testing.TB) (*advisor.Advisor, []*workload.Workload) {
	t.Helper()
	db := engine.New()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	domain := workload.DomainForRows(testRows)
	rng := rand.New(rand.NewSource(31))
	var sb strings.Builder
	for i := 0; i < testRows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	structures := candidates.PaperStructures("t")
	adv, err := advisor.New(db, advisor.DesignSpace{
		Table:      "t",
		Structures: structures,
		Configs:    advisor.SingleIndexConfigs(len(structures)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three representative traces: same trends (W1 pattern), different
	// seeds — plus W3, the out-of-phase variant.
	var traces []*workload.Workload
	for i, spec := range []struct {
		name string
		seed int64
	}{{"W1", 1}, {"W1", 2}, {"W3", 3}} {
		w, err := workload.PaperWorkload(spec.name, testRows, testBlock, spec.seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, w)
	}
	return adv, traces
}

func opts() advisor.Options {
	f := core.Config(0)
	return advisor.Options{Final: &f}
}

func TestCrossValidateKPrefersModerateK(t *testing.T) {
	adv, traces := fixture(t)
	choice, err := CrossValidateK(bg, adv, traces, opts(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.Curve) != 9 {
		t.Fatalf("curve has %d points", len(choice.Curve))
	}
	if choice.Method != "cross-validation" {
		t.Errorf("method = %s", choice.Method)
	}
	// Held-out cost at the chosen k must be the curve minimum.
	best := math.Inf(1)
	bestK := -1
	for _, p := range choice.Curve {
		if p.HoldoutCost < best {
			best = p.HoldoutCost
			bestK = p.K
		}
	}
	if choice.K != bestK {
		t.Errorf("chose k=%d, curve minimum at k=%d", choice.K, bestK)
	}
	// The major-shift structure has 2 shifts; with out-of-phase minor
	// shifts in the holdout, over-fitting large k must not win: the
	// chosen k should be small-to-moderate.
	if choice.K > 6 {
		t.Errorf("cross-validation chose k=%d; expected the trend-following regime (<=6)", choice.K)
	}
	// Training cost decreases (weakly) with k.
	for i := 1; i < len(choice.Curve); i++ {
		if choice.Curve[i].TrainCost > choice.Curve[i-1].TrainCost+1e-6 {
			t.Errorf("training cost increased at k=%d", choice.Curve[i].K)
		}
	}
}

func TestCrossValidateKValidation(t *testing.T) {
	adv, traces := fixture(t)
	if _, err := CrossValidateK(bg, adv, traces[:1], opts(), 4); err == nil {
		t.Error("single trace accepted")
	}
	if _, err := CrossValidateK(bg, adv, traces, opts(), -1); err == nil {
		t.Error("negative maxK accepted")
	}
	short := traces[1].Slice(0, 100)
	if _, err := CrossValidateK(bg, adv, []*workload.Workload{traces[0], short}, opts(), 2); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestElbowKCapturesMajorShifts(t *testing.T) {
	adv, traces := fixture(t)
	choice, err := ElbowK(bg, adv, traces[0], opts(), -1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Method != "elbow" {
		t.Errorf("method = %s", choice.Method)
	}
	// W1's quality curve drops hard at k=2 (the two major shifts); the
	// 60% capture rule must land there.
	if choice.K != 2 {
		t.Errorf("elbow chose k=%d, want 2", choice.K)
	}
	// The curve is monotone non-increasing.
	for i := 1; i < len(choice.Curve); i++ {
		if choice.Curve[i].TrainCost > choice.Curve[i-1].TrainCost+1e-6 {
			t.Errorf("curve increased at k=%d", choice.Curve[i].K)
		}
	}
}

func TestElbowKExtremes(t *testing.T) {
	adv, traces := fixture(t)
	// Capture fraction 1.0: must go all the way to the unconstrained
	// optimum's change count (within maxK).
	choice, err := ElbowK(bg, adv, traces[0], opts(), 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if choice.K != 4 {
		t.Errorf("full capture with maxK=4 chose %d", choice.K)
	}
	// Tiny fraction: the first k with any improvement at all wins, which
	// is at most the major-shift k.
	choice, err = ElbowK(bg, adv, traces[0], opts(), -1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if choice.K > 2 {
		t.Errorf("epsilon capture chose %d", choice.K)
	}
	if _, err := ElbowK(bg, adv, traces[0], opts(), -1, 1.5); err == nil {
		t.Error("capture fraction > 1 accepted")
	}
}

func TestRecommendMultiBalancesTraces(t *testing.T) {
	adv, traces := fixture(t)
	o := opts()
	o.K = 2
	multi, err := adv.RecommendMulti(traces, o)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Solution.Changes > 2 {
		t.Errorf("multi changes = %d", multi.Solution.Changes)
	}
	single, err := adv.Recommend(traces[0], o)
	if err != nil {
		t.Fatal(err)
	}
	// The multi-trace design's mean held-out cost over all traces must
	// not exceed the single-trace design's (it optimizes that mean).
	meanOf := func(rec *advisor.Recommendation) float64 {
		total := 0.0
		for _, tr := range traces {
			c, err := adv.EvaluateOn(rec, tr, o)
			if err != nil {
				t.Fatal(err)
			}
			total += c
		}
		return total / float64(len(traces))
	}
	if mMulti, mSingle := meanOf(multi), meanOf(single); mMulti > mSingle+1e-6 {
		t.Errorf("multi-trace mean %.0f worse than single-trace %.0f", mMulti, mSingle)
	}
	// One trace degenerates to Recommend.
	one, err := adv.RecommendMulti(traces[:1], o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one.Solution.Cost-single.Solution.Cost) > 1e-6 {
		t.Errorf("single-trace multi %.0f != recommend %.0f", one.Solution.Cost, single.Solution.Cost)
	}
}

func TestRecommendMultiValidation(t *testing.T) {
	adv, traces := fixture(t)
	o := opts()
	o.K = 1
	if _, err := adv.RecommendMulti(nil, o); err == nil {
		t.Error("no traces accepted")
	}
	short := traces[1].Slice(0, 10)
	if _, err := adv.RecommendMulti([]*workload.Workload{traces[0], short}, o); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestEvaluateOnMatchesProblemCost(t *testing.T) {
	adv, traces := fixture(t)
	o := opts()
	o.K = 2
	rec, err := adv.Recommend(traces[0], o)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluating on the training trace reproduces the solution cost.
	self, err := adv.EvaluateOn(rec, traces[0], o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-rec.Solution.Cost) > 1e-6*(1+rec.Solution.Cost) {
		t.Errorf("EvaluateOn(self) = %.2f, solution cost %.2f", self, rec.Solution.Cost)
	}
	if _, err := adv.EvaluateOn(rec, traces[1].Slice(0, 10), o); err == nil {
		t.Error("length mismatch accepted")
	}
}
