package stats

import (
	"math"
	"math/rand"
	"testing"

	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

func buildHeap(t testing.TB, rows []types.Row) *storage.HeapFile {
	t.Helper()
	heap := storage.NewHeapFile(nil)
	for _, r := range rows {
		payload, err := types.EncodeRow(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := heap.Insert(payload); err != nil {
			t.Fatal(err)
		}
	}
	return heap
}

func twoColSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindString},
	)
}

func TestBuildBasics(t *testing.T) {
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i % 100)), types.NewString("x")})
	}
	ts, err := Build("t", twoColSchema(), buildHeap(t, rows), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 1000 {
		t.Errorf("Rows = %d", ts.Rows)
	}
	if ts.RowBytes <= 0 {
		t.Errorf("RowBytes = %f", ts.RowBytes)
	}
	cs := ts.Column("a")
	if cs == nil {
		t.Fatal("no stats for column a")
	}
	if cs.NDV != 100 {
		t.Errorf("NDV = %d, want 100", cs.NDV)
	}
	if cs.Hist.Min.Int != 0 || cs.Hist.Max.Int != 99 {
		t.Errorf("min/max = %v/%v", cs.Hist.Min, cs.Hist.Max)
	}
	// Case-insensitive lookup.
	if ts.Column("A") == nil {
		t.Error("case-insensitive column lookup failed")
	}
	if ts.Column("zzz") != nil {
		t.Error("lookup of missing column returned stats")
	}
}

func TestBuildEmptyTable(t *testing.T) {
	ts, err := Build("t", twoColSchema(), storage.NewHeapFile(nil), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 0 {
		t.Errorf("Rows = %d", ts.Rows)
	}
	cs := ts.Column("a")
	if cs == nil || cs.Rows != 0 {
		t.Fatalf("empty column stats = %+v", cs)
	}
	if got := cs.SelectivityEq(types.NewInt(5)); got != 0 {
		t.Errorf("empty SelectivityEq = %f", got)
	}
	if got := cs.SelectivityRange(nil, nil); got != 0 {
		t.Errorf("empty SelectivityRange = %f", got)
	}
}

func TestSelectivityEqUniform(t *testing.T) {
	// Uniform values 0..499 over 5000 rows: each value ~10 rows, eq
	// selectivity ~1/500.
	rng := rand.New(rand.NewSource(17))
	var rows []types.Row
	for i := 0; i < 5000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(rng.Intn(500))), types.NewString("x")})
	}
	ts, err := Build("t", twoColSchema(), buildHeap(t, rows), DefaultBuckets)
	if err != nil {
		t.Fatal(err)
	}
	cs := ts.Column("a")
	got := cs.SelectivityEq(types.NewInt(250))
	want := 1.0 / 500
	if got < want/3 || got > want*3 {
		t.Errorf("SelectivityEq = %g, want ~%g", got, want)
	}
	// Out of range values have zero selectivity.
	if cs.SelectivityEq(types.NewInt(-5)) != 0 || cs.SelectivityEq(types.NewInt(10000)) != 0 {
		t.Error("out-of-range selectivity not 0")
	}
}

func TestSelectivityEqSkewed(t *testing.T) {
	// One hot value (90%) and many cold ones: the hot value's estimate
	// must be much larger than a cold one's.
	var rows []types.Row
	for i := 0; i < 10000; i++ {
		v := int64(7)
		if i%10 == 0 {
			v = int64(1000 + i)
		}
		rows = append(rows, types.Row{types.NewInt(v), types.NewString("x")})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), DefaultBuckets)
	cs := ts.Column("a")
	hot := cs.SelectivityEq(types.NewInt(7))
	cold := cs.SelectivityEq(types.NewInt(1010))
	if hot < 0.5 {
		t.Errorf("hot value selectivity = %g, want ~0.9", hot)
	}
	if cold > 0.01 {
		t.Errorf("cold value selectivity = %g, want tiny", cold)
	}
}

func TestSelectivityRange(t *testing.T) {
	// Values exactly 0..999 once each.
	var rows []types.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i)), types.NewString("x")})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), 50)
	cs := ts.Column("a")
	lo, hi := types.NewInt(100), types.NewInt(300)
	got := cs.SelectivityRange(&lo, &hi)
	if math.Abs(got-0.2) > 0.05 {
		t.Errorf("range [100,300) selectivity = %g, want ~0.2", got)
	}
	// Unbounded ranges.
	if got := cs.SelectivityRange(nil, nil); math.Abs(got-1.0) > 0.01 {
		t.Errorf("unbounded selectivity = %g", got)
	}
	if got := cs.SelectivityRange(&lo, nil); math.Abs(got-0.9) > 0.05 {
		t.Errorf("[100,inf) selectivity = %g, want ~0.9", got)
	}
	if got := cs.SelectivityRange(nil, &hi); math.Abs(got-0.3) > 0.05 {
		t.Errorf("(-inf,300) selectivity = %g, want ~0.3", got)
	}
	// Inverted range clamps to 0.
	if got := cs.SelectivityRange(&hi, &lo); got != 0 {
		t.Errorf("inverted range = %g", got)
	}
}

func TestHotValueNeverStraddlesBuckets(t *testing.T) {
	// 50% of rows share one value; the equality estimate must see the
	// whole spike even with many buckets.
	var rows []types.Row
	for i := 0; i < 2000; i++ {
		v := int64(i)
		if i%2 == 0 {
			v = 500
		}
		rows = append(rows, types.Row{types.NewInt(v), types.NewString("x")})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), 64)
	got := ts.Column("a").SelectivityEq(types.NewInt(500))
	if got < 0.4 {
		t.Errorf("hot value estimate = %g, want ~0.5", got)
	}
}

func TestStringColumnStats(t *testing.T) {
	var rows []types.Row
	words := []string{"apple", "banana", "cherry", "date"}
	for i := 0; i < 400; i++ {
		rows = append(rows, types.Row{types.NewInt(0), types.NewString(words[i%4])})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), 10)
	cs := ts.Column("s")
	if cs.NDV != 4 {
		t.Errorf("string NDV = %d", cs.NDV)
	}
	got := cs.SelectivityEq(types.NewString("banana"))
	if math.Abs(got-0.25) > 0.1 {
		t.Errorf("string eq selectivity = %g, want ~0.25", got)
	}
}

func TestNDVSumAcrossBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	distinct := make(map[int64]bool)
	var rows []types.Row
	for i := 0; i < 3000; i++ {
		v := int64(rng.Intn(700))
		distinct[v] = true
		rows = append(rows, types.Row{types.NewInt(v), types.NewString("x")})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), 30)
	if got := ts.Column("a").NDV; got != int64(len(distinct)) {
		t.Errorf("NDV = %d, want %d (exact)", got, len(distinct))
	}
}

func TestSelectivitySumsToOneProperty(t *testing.T) {
	// The sum of eq selectivities over all distinct values approximates 1.
	rng := rand.New(rand.NewSource(8))
	var rows []types.Row
	vals := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		v := int64(rng.Intn(200))
		vals[v] = true
		rows = append(rows, types.Row{types.NewInt(v), types.NewString("x")})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), 20)
	cs := ts.Column("a")
	sum := 0.0
	for v := range vals {
		sum += cs.SelectivityEq(types.NewInt(v))
	}
	if math.Abs(sum-1.0) > 0.1 {
		t.Errorf("sum of eq selectivities = %g, want ~1", sum)
	}
}

func TestBucketCountRespected(t *testing.T) {
	var rows []types.Row
	for i := 0; i < 10000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i)), types.NewString("x")})
	}
	ts, _ := Build("t", twoColSchema(), buildHeap(t, rows), 16)
	nb := len(ts.Column("a").Hist.Buckets)
	if nb < 8 || nb > 32 {
		t.Errorf("bucket count = %d, want ~16", nb)
	}
}
