// Package stats builds and serves table statistics: row counts, per-column
// distinct counts, min/max, and equi-depth histograms. The what-if cost
// model uses these to estimate predicate selectivities exactly the way the
// planner does, so EXEC(S,C) estimates agree with what execution would pay.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dyndesign/internal/storage"
	"dyndesign/internal/types"
)

// DefaultBuckets is the default number of equi-depth histogram buckets.
const DefaultBuckets = 100

// Bucket is one equi-depth histogram bucket: it covers values in
// (previous bucket's Upper, Upper], holding Count rows over Distinct
// distinct values. The first bucket's lower bound is the column minimum,
// inclusive.
type Bucket struct {
	Upper    types.Value
	Count    int64
	Distinct int64
}

// Histogram is an equi-depth histogram over one column.
type Histogram struct {
	Min     types.Value
	Max     types.Value
	Buckets []Bucket
	Rows    int64
}

// ColumnStats aggregates the statistics of one column.
type ColumnStats struct {
	Column string
	Rows   int64
	NDV    int64
	Hist   *Histogram
}

// TableStats aggregates the statistics of one table.
type TableStats struct {
	Table    string
	Rows     int64
	RowBytes float64 // average encoded row size
	Columns  map[string]*ColumnStats
}

// Build scans the heap once and computes statistics for every column of
// the schema. numBuckets controls histogram resolution (DefaultBuckets if
// <= 0). The scan charges page reads to the heap's stats, as a real
// ANALYZE would.
func Build(table string, schema *types.Schema, heap *storage.HeapFile, numBuckets int) (*TableStats, error) {
	if numBuckets <= 0 {
		numBuckets = DefaultBuckets
	}
	cols := schema.Columns
	samples := make([][]types.Value, len(cols))
	var rows int64
	var bytes int64
	var scanErr error
	heap.Scan(func(rid storage.RID, payload []byte) bool {
		row, err := types.DecodeRow(payload)
		if err != nil {
			scanErr = fmt.Errorf("stats: decoding row %s: %w", rid, err)
			return false
		}
		if len(row) != len(cols) {
			scanErr = fmt.Errorf("stats: row %s has %d values, schema %d", rid, len(row), len(cols))
			return false
		}
		for i, v := range row {
			samples[i] = append(samples[i], v)
		}
		rows++
		bytes += int64(len(payload))
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	ts := &TableStats{
		Table:   table,
		Rows:    rows,
		Columns: make(map[string]*ColumnStats, len(cols)),
	}
	if rows > 0 {
		ts.RowBytes = float64(bytes) / float64(rows)
	}
	for i, c := range cols {
		ts.Columns[lower(c.Name)] = buildColumn(c.Name, samples[i], numBuckets)
	}
	return ts, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func buildColumn(name string, vals []types.Value, numBuckets int) *ColumnStats {
	cs := &ColumnStats{Column: name, Rows: int64(len(vals))}
	if len(vals) == 0 {
		return cs
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	h := &Histogram{Min: vals[0], Max: vals[len(vals)-1], Rows: int64(len(vals))}

	perBucket := (len(vals) + numBuckets - 1) / numBuckets
	if perBucket < 1 {
		perBucket = 1
	}
	// Walk runs of equal values. A run at least as large as a bucket
	// becomes its own singleton bucket (end-biased histogram), so hot
	// values get exact equality estimates instead of being averaged with
	// their bucket neighbours.
	var ndv int64
	var cur Bucket
	flush := func() {
		if cur.Count > 0 {
			h.Buckets = append(h.Buckets, cur)
			cur = Bucket{}
		}
	}
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && vals[j].Equal(vals[i]) {
			j++
		}
		runLen := int64(j - i)
		ndv++
		if runLen >= int64(perBucket) {
			flush()
			h.Buckets = append(h.Buckets, Bucket{Upper: vals[i], Count: runLen, Distinct: 1})
		} else {
			cur.Upper = vals[i]
			cur.Count += runLen
			cur.Distinct++
			if cur.Count >= int64(perBucket) {
				flush()
			}
		}
		i = j
	}
	flush()
	cs.NDV = ndv
	cs.Hist = h
	return cs
}

// Column returns the stats for a column (case-insensitive), or nil.
func (ts *TableStats) Column(name string) *ColumnStats {
	return ts.Columns[lower(name)]
}

// Fingerprint hashes the statistics content — row counts, NDVs, and
// every histogram bucket — into one 64-bit value. Two TableStats with
// equal fingerprints yield the same selectivity estimates, so cost
// models use it as their statistics epoch: a refreshed ANALYZE or an
// in-place histogram mutation changes the fingerprint and invalidates
// anything cached against the old world. A nil receiver hashes to 0.
func (ts *TableStats) Fingerprint() uint64 {
	if ts == nil {
		return 0
	}
	h := fnvHash{}
	h.string(ts.Table)
	h.int(ts.Rows)
	h.int(int64(math.Float64bits(ts.RowBytes)))
	names := make([]string, 0, len(ts.Columns))
	for name := range ts.Columns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := ts.Columns[name]
		h.string(name)
		h.int(cs.Rows)
		h.int(cs.NDV)
		if cs.Hist == nil {
			continue
		}
		h.value(cs.Hist.Min)
		h.value(cs.Hist.Max)
		h.int(cs.Hist.Rows)
		for _, b := range cs.Hist.Buckets {
			h.value(b.Upper)
			h.int(b.Count)
			h.int(b.Distinct)
		}
	}
	return h.sum()
}

// fnvHash is a tiny FNV-1a accumulator over the mixed field types the
// fingerprint walks.
type fnvHash struct {
	h uint64
	// started distinguishes the zero value from an initialized hash.
	started bool
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (f *fnvHash) init() {
	if !f.started {
		f.h = fnvOffset
		f.started = true
	}
}

func (f *fnvHash) byte(b byte) {
	f.init()
	f.h = (f.h ^ uint64(b)) * fnvPrime
}

func (f *fnvHash) int(v int64) {
	for i := 0; i < 8; i++ {
		f.byte(byte(v >> (8 * i)))
	}
}

func (f *fnvHash) string(s string) {
	f.int(int64(len(s)))
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
}

func (f *fnvHash) value(v types.Value) {
	f.byte(byte(v.Kind))
	f.int(v.Int)
	f.string(v.Str)
}

func (f *fnvHash) sum() uint64 {
	f.init()
	return f.h
}

// SelectivityEq estimates the fraction of rows with column = v.
func (cs *ColumnStats) SelectivityEq(v types.Value) float64 {
	if cs.Rows == 0 || cs.Hist == nil {
		return 0
	}
	h := cs.Hist
	if v.Compare(h.Min) < 0 || v.Compare(h.Max) > 0 {
		return 0
	}
	b := h.bucketFor(v)
	if b == nil || b.Distinct == 0 {
		return 0
	}
	return float64(b.Count) / float64(b.Distinct) / float64(cs.Rows)
}

// SelectivityRange estimates the fraction of rows with low <= column <
// high. A nil bound is unbounded. Partial buckets are interpolated
// linearly for integer columns and taken as half for string columns.
func (cs *ColumnStats) SelectivityRange(low, high *types.Value) float64 {
	if cs.Rows == 0 || cs.Hist == nil {
		return 0
	}
	hiFrac := 1.0
	if high != nil {
		hiFrac = cs.Hist.fracBelow(*high)
	}
	loFrac := 0.0
	if low != nil {
		loFrac = cs.Hist.fracBelow(*low)
	}
	frac := hiFrac - loFrac
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// bucketFor returns the bucket containing v, or nil.
func (h *Histogram) bucketFor(v types.Value) *Bucket {
	lo, hi := 0, len(h.Buckets)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.Buckets[mid].Upper.Compare(v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(h.Buckets) {
		return nil
	}
	return &h.Buckets[lo]
}

// fracBelow estimates the fraction of rows with value < v.
func (h *Histogram) fracBelow(v types.Value) float64 {
	if v.Compare(h.Min) <= 0 {
		return 0
	}
	if v.Compare(h.Max) > 0 {
		return 1
	}
	var below int64
	lowerBound := h.Min
	for i := range h.Buckets {
		b := &h.Buckets[i]
		if b.Upper.Compare(v) < 0 {
			below += b.Count
			lowerBound = b.Upper
			continue
		}
		// v falls in this bucket: interpolate.
		below += int64(float64(b.Count) * interpolate(lowerBound, b.Upper, v))
		break
	}
	return float64(below) / float64(h.Rows)
}

// interpolate estimates the fraction of the bucket (lower, upper] that is
// below v.
func interpolate(lower, upper, v types.Value) float64 {
	if v.Kind == types.KindInt && lower.Kind == types.KindInt && upper.Kind == types.KindInt {
		span := upper.Int - lower.Int
		if span <= 0 {
			return 0
		}
		f := float64(v.Int-lower.Int) / float64(span)
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	return 0.5
}
