package explain

import (
	"fmt"
	"io"
	"strconv"

	"dyndesign/internal/core"
	"dyndesign/internal/obs"
)

// Render writes the human-readable provenance report: the cost
// attribution of every design change, the cost-of-constraint curve, and
// the overfitting audit. The layout is covered by a golden-file test —
// change the golden data when changing the format.
func (e *Explanation) Render(w io.Writer) {
	k := "unconstrained"
	if e.K != core.Unconstrained {
		k = strconv.Itoa(e.K)
	}
	fmt.Fprintf(w, "Decision provenance (schema v%d, strategy %s)\n", e.SchemaVersion, e.Strategy)
	fmt.Fprintf(w, "  stages: %d   k: %s   policy: %s\n", e.Stages, k, e.Policy)
	fmt.Fprintf(w, "  cost: %.2f = EXEC %.2f + TRANS %.2f   changes used: %d\n",
		e.Cost, e.ExecCost, e.TransCost, e.Changes)
	if len(e.Transitions) == 0 {
		fmt.Fprintf(w, "  no design changes: one configuration serves the whole sequence\n")
	}
	for _, t := range e.Transitions {
		if t.RunLength == 0 {
			fmt.Fprintf(w, "  @stage %-4d %s -> %s (final teardown)   TRANS %.2f\n",
				t.Stage, t.From, t.To, t.TransCost)
			continue
		}
		fmt.Fprintf(w, "  @stage %-4d %s -> %s\n", t.Stage, t.From, t.To)
		fmt.Fprintf(w, "    TRANS %.2f buys EXEC savings %.2f over %d stages (removal penalty %+.2f)\n",
			t.TransCost, t.ExecSaved, t.RunLength, t.RemovalPenalty)
		for _, s := range t.TopStages {
			loc := fmt.Sprintf("stage %d", s.Stage)
			if s.Statement >= 0 {
				loc = fmt.Sprintf("stmt %d", s.Statement)
			}
			if s.SQL != "" {
				fmt.Fprintf(w, "      %-10s delta %9.2f  %s\n", loc, s.Delta, s.SQL)
			} else {
				fmt.Fprintf(w, "      %-10s delta %9.2f\n", loc, s.Delta)
			}
		}
	}
	if len(e.KSweep) > 0 {
		fmt.Fprintf(w, "  cost of constraint (k-sweep):\n")
		fmt.Fprintf(w, "    %4s %12s %10s %8s\n", "k", "cost", "marginal", "changes")
		for _, pt := range e.KSweep {
			if !pt.Feasible {
				fmt.Fprintf(w, "    %4d %12s\n", pt.K, "infeasible")
				continue
			}
			marker := ""
			if pt.K == e.K {
				marker = "  <- recommended"
			}
			fmt.Fprintf(w, "    %4d %12.2f %10.2f %8d%s\n", pt.K, pt.Cost, pt.Marginal, pt.Changes, marker)
		}
	}
	if e.Audit != nil {
		a := e.Audit
		fmt.Fprintf(w, "  overfitting audit (%d perturbed replays, seed %d):\n", a.Trials, a.Seed)
		renderSide(w, "constrained", &a.Constrained)
		renderSide(w, "unconstrained", &a.Unconstrained)
		switch {
		case a.Constrained.MeanRegret <= a.Unconstrained.MeanRegret:
			fmt.Fprintf(w, "    verdict: constrained design generalizes at least as well as unconstrained\n")
		default:
			fmt.Fprintf(w, "    verdict: WARNING constrained design shows higher held-out regret than unconstrained\n")
		}
	}
}

func renderSide(w io.Writer, name string, s *AuditSide) {
	k := "unconstrained"
	if s.K != core.Unconstrained {
		k = fmt.Sprintf("k=%d", s.K)
	}
	fmt.Fprintf(w, "    %-13s (%s, %d changes): train cost %.2f, held-out regret mean %.2f max %.2f\n",
		name, k, s.Changes, s.TrainCost, s.MeanRegret, s.MaxRegret)
}

// PublishGauges exports the explanation's headline numbers as
// Prometheus gauges: the cost split, the k-sweep curve, and the audit
// regrets. A nil GaugeSet is a no-op, so callers can publish
// unconditionally.
func (e *Explanation) PublishGauges(g *obs.GaugeSet) {
	if g == nil {
		return
	}
	g.Help("dyndesign_explain_cost", "Recommended sequence cost by component.")
	g.Set("dyndesign_explain_cost", e.Cost, "component", "total")
	g.Set("dyndesign_explain_cost", e.ExecCost, "component", "exec")
	g.Set("dyndesign_explain_cost", e.TransCost, "component", "trans")
	g.Help("dyndesign_explain_changes", "Design changes used by the recommendation.")
	g.Set("dyndesign_explain_changes", float64(e.Changes))
	g.Help("dyndesign_explain_ksweep_cost", "Optimal sequence cost at each change bound.")
	for _, pt := range e.KSweep {
		if pt.Feasible {
			g.Set("dyndesign_explain_ksweep_cost", pt.Cost, "k", strconv.Itoa(pt.K))
		}
	}
	if e.Audit != nil {
		g.Help("dyndesign_explain_audit_regret", "Held-out mean regret of the fixed design over perturbed replays.")
		g.Set("dyndesign_explain_audit_regret", e.Audit.Constrained.MeanRegret, "side", "constrained")
		g.Set("dyndesign_explain_audit_regret", e.Audit.Unconstrained.MeanRegret, "side", "unconstrained")
	}
}
