package explain

import (
	"context"

	"dyndesign/internal/core"
)

// buildKSweep computes the counterfactual cost-of-constraint curve
// around the solved bound: cost(k') for k' in [0, base+KSweepDelta],
// where base is the problem's K (or the solution's change count when
// unconstrained). One layered DP run answers every point — the layers
// the k-aware solver normally discards (core.SweepK).
func buildKSweep(ctx context.Context, p *core.Problem, sol *core.Solution, opts Options) ([]KPoint, error) {
	base := p.K
	if base == core.Unconstrained {
		base = sol.Changes
	}
	curve, err := core.SweepK(ctx, p, base+opts.KSweepDelta)
	if err != nil {
		return nil, err
	}
	out := make([]KPoint, len(curve))
	for i, pt := range curve {
		out[i] = KPoint{
			K:        pt.K,
			Feasible: pt.Feasible,
			Cost:     pt.Cost, ExecCost: pt.ExecCost, TransCost: pt.TransCost,
			Changes: pt.Changes,
		}
		if i > 0 && pt.Feasible && curve[i-1].Feasible {
			out[i].Marginal = curve[i-1].Cost - pt.Cost
		}
	}
	return out, nil
}
