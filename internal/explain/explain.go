// Package explain builds decision provenance for a solved constrained
// dynamic physical design problem: why each design change was worth its
// transition cost, what the change bound k cost relative to nearby
// bounds, and whether the recommendation survives perturbations of the
// trace it was fitted to (the overfitting audit).
//
// The package depends only on core and obs so every consumer — the
// advisor, the CLIs, the experiment harness — can attach provenance to
// any Solution without an import cycle. Everything is computed from the
// solved sequence and the problem's (memoized) cost model; nothing here
// re-runs the original solve. The k-sweep reuses the k-aware layered DP
// through core.SweepK, and the audit re-solves only the small perturbed
// problems its caller supplies.
package explain

import (
	"context"
	"fmt"

	"dyndesign/internal/core"
)

// SchemaVersion identifies the Explanation JSON schema. Bump it when a
// field changes meaning; additive fields keep the version.
const SchemaVersion = 1

// PerturbFunc builds the perturbed problem for one audit trial. The
// returned problem must share the solved problem's design space (the
// fixed design sequence is replayed against it verbatim) and should
// derive all randomness from seed so audits are reproducible. The
// advisor supplies a closure that resamples the workload trace
// block-wise and re-assembles the problem.
type PerturbFunc func(trial int, seed int64) (*core.Problem, error)

// Options configures Build.
type Options struct {
	// Strategy labels the explanation with the solver that produced the
	// solution (informational; the advisor passes the rung that
	// answered).
	Strategy core.Strategy
	// StructureNames render configurations; missing names fall back to
	// bit indices.
	StructureNames []string
	// StageInfo, when non-nil, decorates stages with workload positions:
	// it returns the index of the stage's first statement and a short
	// SQL excerpt. The advisor derives it from its segments.
	StageInfo func(stage int) (statement int, sql string)
	// KSweepDelta extends the counterfactual sweep to k + KSweepDelta
	// change bounds (default 2, negative disables the sweep).
	KSweepDelta int
	// TopStages bounds the per-transition list of most-affected stages
	// (default 3).
	TopStages int
	// AuditTrials is the number of perturbed replays (default 0: no
	// audit). The audit also requires Perturb.
	AuditTrials int
	// AuditSeed derives the per-trial seeds (trial i uses AuditSeed+i).
	AuditSeed int64
	// Perturb builds each trial's perturbed problem; nil disables the
	// audit.
	Perturb PerturbFunc
	// OracleStrategy re-solves perturbed problems for the regret
	// baseline (default the exact k-aware solver).
	OracleStrategy core.Strategy
}

func (o *Options) topStages() int {
	if o.TopStages <= 0 {
		return 3
	}
	return o.TopStages
}

func (o *Options) oracle() core.Strategy {
	if o.OracleStrategy == "" {
		return core.StrategyKAware
	}
	return o.OracleStrategy
}

// StageImpact is one stage's contribution to a design change: the
// what-if EXEC delta the change bought for that stage.
type StageImpact struct {
	// Stage is the problem stage index.
	Stage int `json:"stage"`
	// Statement is the index of the stage's first workload statement
	// (-1 when no StageInfo was supplied).
	Statement int `json:"statement"`
	// SQL is a short excerpt of the stage's first statement ("" when no
	// StageInfo was supplied).
	SQL string `json:"sql,omitempty"`
	// Delta is EXEC(stage, from) - EXEC(stage, to): how much cheaper the
	// stage executes under the new design.
	Delta float64 `json:"delta"`
}

// Transition is one design change of the solution with its cost
// attribution: what the change cost (TRANS), what it bought (EXEC saved
// over the run it starts), and the penalty that removing it would incur
// — the quantity the merging heuristic minimizes, reused here as the
// justification of keeping the change.
type Transition struct {
	// Stage is the stage index before which the change happens;
	// Stage == stages means the final teardown to the pinned endpoint.
	Stage int `json:"stage"`
	// Statement is the workload index of the stage's first statement
	// (-1 when unknown).
	Statement int `json:"statement"`
	// From and To are the configurations, rendered with the structure
	// names; FromBits and ToBits are their raw bitsets.
	From     string `json:"from"`
	To       string `json:"to"`
	FromBits uint64 `json:"from_bits"`
	ToBits   uint64 `json:"to_bits"`
	// TransCost is TRANS(From, To), the price of the change.
	TransCost float64 `json:"trans_cost"`
	// RunLength is the number of stages executed under To before the
	// next change (0 for the final teardown).
	RunLength int `json:"run_length"`
	// RunExecCost is the EXEC total of that run under To.
	RunExecCost float64 `json:"run_exec_cost"`
	// ExecSaved is the EXEC total the run saves relative to staying in
	// From: sum over the run of EXEC(i, From) - EXEC(i, To).
	ExecSaved float64 `json:"exec_saved"`
	// RemovalPenalty is the sequence-cost increase if the change were
	// removed and its run executed under From instead (transition
	// rewiring included) — the merging heuristic's penalty of collapsing
	// this run into its predecessor. A positive value is the margin that
	// justified the change; a negative value means a heuristic solver
	// kept a change the exact merge step would have removed.
	RemovalPenalty float64 `json:"removal_penalty"`
	// TopStages lists the stages the change helped most, by EXEC delta
	// (ties broken by stage index).
	TopStages []StageImpact `json:"top_stages,omitempty"`
}

// KPoint is one point of the counterfactual cost-of-constraint curve.
type KPoint struct {
	K        int  `json:"k"`
	Feasible bool `json:"feasible"`
	// Cost is the optimal sequence cost at change bound K, with its
	// EXEC/TRANS split; Changes is the optimum's change count.
	Cost      float64 `json:"cost"`
	ExecCost  float64 `json:"exec_cost"`
	TransCost float64 `json:"trans_cost"`
	Changes   int     `json:"changes"`
	// Marginal is cost(K-1) - cost(K): what the K-th allowed change
	// bought. Zero at K = 0 and when the previous point is infeasible.
	Marginal float64 `json:"marginal"`
}

// Trial is one perturbed replay of the audit.
type Trial struct {
	Seed int64 `json:"seed"`
	// FixedCost is the fixed design sequence's cost on the perturbed
	// problem; OracleCost the re-solved optimum; Regret the difference.
	FixedCost  float64 `json:"fixed_cost"`
	OracleCost float64 `json:"oracle_cost"`
	Regret     float64 `json:"regret"`
}

// AuditSide is the audit result for one design (constrained or
// unconstrained): the held-out regret of replaying that fixed design
// against perturbed traces, versus re-solving each perturbation.
type AuditSide struct {
	// K is the change bound the side's design was solved under
	// (core.Unconstrained for the unconstrained side).
	K int `json:"k"`
	// TrainCost is the design's cost on the original (training) problem.
	TrainCost float64 `json:"train_cost"`
	// Changes is the design's change count on the original problem.
	Changes int `json:"changes"`
	// MeanRegret and MaxRegret summarize the trials.
	MeanRegret float64 `json:"mean_regret"`
	MaxRegret  float64 `json:"max_regret"`
	Trials     []Trial `json:"trials"`
}

// Audit is the overfitting audit: the constrained recommendation and
// the unconstrained optimum, each replayed against the same perturbed
// traces. A constrained design that generalizes shows held-out regret
// at or below the unconstrained design's — the paper's argument that
// bounding changes prevents fitting transient noise.
type Audit struct {
	Trials        int       `json:"trials"`
	Seed          int64     `json:"seed"`
	Constrained   AuditSide `json:"constrained"`
	Unconstrained AuditSide `json:"unconstrained"`
}

// Explanation is the schema-versioned decision provenance of one
// recommendation.
type Explanation struct {
	SchemaVersion int    `json:"schema_version"`
	Strategy      string `json:"strategy,omitempty"`
	Stages        int    `json:"stages"`
	K             int    `json:"k"`
	Policy        string `json:"policy"`
	// Cost and its split mirror the explained Solution exactly.
	Cost      float64 `json:"cost"`
	ExecCost  float64 `json:"exec_cost"`
	TransCost float64 `json:"trans_cost"`
	Changes   int     `json:"changes"`
	// Transitions attributes every design change, endpoint transitions
	// included.
	Transitions []Transition `json:"transitions"`
	// KSweep is the cost-of-constraint curve over [0, k+KSweepDelta].
	KSweep []KPoint `json:"k_sweep,omitempty"`
	// Audit is the overfitting audit (nil when not requested).
	Audit *Audit `json:"audit,omitempty"`
}

// Build computes the decision provenance of sol for p. The solution
// must belong to the problem (same stage count). Build never mutates p
// beyond evaluating its cost model; with a memoizing model (the
// advisor's what-if model) attribution reuses cached cells instead of
// re-costing.
func Build(ctx context.Context, p *core.Problem, sol *core.Solution, opts Options) (*Explanation, error) {
	if sol == nil {
		return nil, fmt.Errorf("explain: no solution to explain")
	}
	if len(sol.Designs) != p.Stages {
		return nil, fmt.Errorf("explain: solution has %d designs for %d stages", len(sol.Designs), p.Stages)
	}
	e := &Explanation{
		SchemaVersion: SchemaVersion,
		Strategy:      string(opts.Strategy),
		Stages:        p.Stages,
		K:             p.K,
		Policy:        p.Policy.String(),
		Cost:          sol.Cost,
		ExecCost:      sol.ExecCost,
		TransCost:     sol.TransCost,
		Changes:       sol.Changes,
	}
	e.Transitions = attribute(p, sol, opts)
	if opts.KSweepDelta >= 0 {
		sweep, err := buildKSweep(ctx, p, sol, opts)
		if err != nil {
			return nil, err
		}
		e.KSweep = sweep
	}
	if opts.Perturb != nil && opts.AuditTrials > 0 {
		audit, err := runAudit(ctx, p, sol, opts)
		if err != nil {
			return nil, err
		}
		e.Audit = audit
	}
	return e, nil
}
