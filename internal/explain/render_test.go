package explain

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyndesign/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderGolden pins the rendered provenance report byte for byte.
// The fixture is fully deterministic (seeded noise, serial solve), so
// any diff is a deliberate format change: regenerate with
// `go test ./internal/explain -run Golden -update`.
func TestRenderGolden(t *testing.T) {
	_, _, e := buildFixture(t, 1)
	var sb strings.Builder
	e.Render(&sb)
	got := sb.String()

	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("rendered report drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPublishGauges pins the gauge export: cost split, sweep points,
// and audit regrets all land in the set; a nil set is a no-op.
func TestPublishGauges(t *testing.T) {
	_, _, e := buildFixture(t, 1)
	e.PublishGauges(nil) // must not panic

	g := obs.NewGaugeSet()
	e.PublishGauges(g)
	var sb strings.Builder
	if err := g.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dyndesign_explain_cost{component="total"}`,
		`dyndesign_explain_cost{component="exec"}`,
		`dyndesign_explain_cost{component="trans"}`,
		"dyndesign_explain_changes",
		`dyndesign_explain_ksweep_cost{k="0"}`,
		`dyndesign_explain_ksweep_cost{k="4"}`,
		`dyndesign_explain_audit_regret{side="constrained"}`,
		`dyndesign_explain_audit_regret{side="unconstrained"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gauge export missing %s", want)
		}
	}
}
