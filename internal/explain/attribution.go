package explain

import (
	"sort"

	"dyndesign/internal/core"
)

// attribute explains every design change of the solution: the interior
// changes between runs, the initial installation when the first design
// differs from C0, and the final teardown when the problem pins the
// endpoint. All quantities come from the problem's cost model over the
// already-solved sequence — no re-solving.
func attribute(p *core.Problem, sol *core.Solution, opts Options) []Transition {
	runs := sol.Runs()
	var out []Transition
	prev := p.Initial
	for r, run := range runs {
		if run.Config == prev {
			continue // the first run can extend C0; later runs always differ
		}
		// next is the configuration after this run ends — the following
		// run's, or the pinned final one — needed to price what removing
		// the change would do to the outgoing transition.
		var next *core.Config
		if r+1 < len(runs) {
			next = &runs[r+1].Config
		} else if p.Final != nil {
			next = p.Final
		}
		out = append(out, transitionFor(p, prev, run, next, opts))
		prev = run.Config
	}
	if p.Final != nil && prev != *p.Final {
		t := Transition{
			Stage:     p.Stages,
			Statement: -1,
			From:      prev.Format(opts.StructureNames),
			To:        p.Final.Format(opts.StructureNames),
			FromBits:  uint64(prev),
			ToBits:    uint64(*p.Final),
			TransCost: p.Model.Trans(prev, *p.Final),
		}
		if opts.StageInfo != nil {
			// The teardown happens after the last stage; report the
			// statement index one past the last stage's first statement
			// span by probing the final stage.
			stmt, _ := opts.StageInfo(p.Stages - 1)
			t.Statement = stmt
		}
		// Tearing down to a pinned endpoint cannot be removed; its
		// "penalty" is the teardown price itself, reported as 0 margin.
		out = append(out, t)
	}
	return out
}

// transitionFor prices one interior (or initial) design change: the run
// [run.Start, run.Start+run.Length) executes under run.Config instead
// of from, at transition price TRANS(from, run.Config).
func transitionFor(p *core.Problem, from core.Config, run core.Run, next *core.Config, opts Options) Transition {
	to := run.Config
	t := Transition{
		Stage:     run.Start,
		Statement: -1,
		From:      from.Format(opts.StructureNames),
		To:        to.Format(opts.StructureNames),
		FromBits:  uint64(from),
		ToBits:    uint64(to),
		TransCost: p.Model.Trans(from, to),
		RunLength: run.Length,
	}
	if opts.StageInfo != nil {
		t.Statement, _ = opts.StageInfo(run.Start)
	}
	impacts := make([]StageImpact, 0, run.Length)
	for i := run.Start; i < run.Start+run.Length; i++ {
		under := p.Model.Exec(i, to)
		t.RunExecCost += under
		delta := p.Model.Exec(i, from) - under
		t.ExecSaved += delta
		im := StageImpact{Stage: i, Statement: -1, Delta: delta}
		if opts.StageInfo != nil {
			im.Statement, im.SQL = opts.StageInfo(i)
		}
		impacts = append(impacts, im)
	}
	// RemovalPenalty is the merge heuristic's penalty of collapsing this
	// run into its predecessor: run stages execute under from, the
	// incoming transition disappears, and the outgoing transition is
	// rewired from (to -> next) to (from -> next).
	t.RemovalPenalty = t.ExecSaved - t.TransCost
	if next != nil {
		t.RemovalPenalty -= p.Model.Trans(to, *next)
		t.RemovalPenalty += p.Model.Trans(from, *next)
	}
	sort.SliceStable(impacts, func(a, b int) bool {
		if impacts[a].Delta != impacts[b].Delta {
			return impacts[a].Delta > impacts[b].Delta
		}
		return impacts[a].Stage < impacts[b].Stage
	})
	if top := opts.topStages(); len(impacts) > top {
		impacts = impacts[:top]
	}
	t.TopStages = impacts
	return t
}
