package explain

import (
	"context"
	"fmt"
	"math"

	"dyndesign/internal/core"
)

// runAudit replays two fixed designs — the constrained recommendation
// and the unconstrained optimum of the same training problem — against
// AuditTrials perturbed problems, comparing each replay to the
// perturbation's re-solved optimum. The held-out regret of a fixed
// design is how much it overpaid for having been fitted to the training
// trace; a design that only captured real phase structure shows ~zero
// regret, one that chased noise does not.
//
// Trials run sequentially with seeds AuditSeed+i, so the audit is
// deterministic for a deterministic Perturb.
func runAudit(ctx context.Context, p *core.Problem, sol *core.Solution, opts Options) (*Audit, error) {
	// The unconstrained counterpart is solved on the training problem —
	// the design an unbounded advisor would have shipped.
	unc := *p
	unc.K = core.Unconstrained
	uncSol, err := core.Solve(ctx, &unc, opts.oracle())
	if err != nil {
		return nil, fmt.Errorf("explain: solving unconstrained training counterpart: %w", err)
	}
	audit := &Audit{
		Trials: opts.AuditTrials,
		Seed:   opts.AuditSeed,
		Constrained: AuditSide{
			K: p.K, TrainCost: sol.Cost, Changes: sol.Changes,
		},
		Unconstrained: AuditSide{
			K: core.Unconstrained, TrainCost: uncSol.Cost, Changes: uncSol.Changes,
		},
	}
	for trial := 0; trial < opts.AuditTrials; trial++ {
		seed := opts.AuditSeed + int64(trial)
		perturbed, err := opts.Perturb(trial, seed)
		if err != nil {
			return nil, fmt.Errorf("explain: audit trial %d: %w", trial, err)
		}
		if perturbed.Stages != p.Stages {
			return nil, fmt.Errorf("explain: audit trial %d has %d stages, want %d",
				trial, perturbed.Stages, p.Stages)
		}
		ct, err := replayTrial(ctx, perturbed, p.K, sol.Designs, seed, opts)
		if err != nil {
			return nil, fmt.Errorf("explain: audit trial %d (constrained): %w", trial, err)
		}
		audit.Constrained.Trials = append(audit.Constrained.Trials, ct)
		ut, err := replayTrial(ctx, perturbed, core.Unconstrained, uncSol.Designs, seed, opts)
		if err != nil {
			return nil, fmt.Errorf("explain: audit trial %d (unconstrained): %w", trial, err)
		}
		audit.Unconstrained.Trials = append(audit.Unconstrained.Trials, ut)
	}
	summarize(&audit.Constrained)
	summarize(&audit.Unconstrained)
	return audit, nil
}

// replayTrial costs the fixed design sequence on the perturbed problem
// and re-solves the perturbation at change bound k for the oracle
// baseline.
func replayTrial(ctx context.Context, perturbed *core.Problem, k int, designs []core.Config, seed int64, opts Options) (Trial, error) {
	pp := *perturbed
	pp.K = k
	oracle, err := core.Solve(ctx, &pp, opts.oracle())
	if err != nil {
		return Trial{}, err
	}
	fixed := pp.SequenceCost(designs)
	regret := fixed - oracle.Cost
	// The oracle is optimal over the same candidate set, so true regret
	// is non-negative; clamp the float residue of cost recomputation so
	// reports do not show -0.0000001 regret.
	if regret < 0 && regret > -1e-6*(1+math.Abs(fixed)) {
		regret = 0
	}
	return Trial{Seed: seed, FixedCost: fixed, OracleCost: oracle.Cost, Regret: regret}, nil
}

// summarize fills the side's mean and max regret from its trials.
func summarize(s *AuditSide) {
	if len(s.Trials) == 0 {
		return
	}
	max := math.Inf(-1)
	sum := 0.0
	for _, t := range s.Trials {
		sum += t.Regret
		if t.Regret > max {
			max = t.Regret
		}
	}
	s.MeanRegret = sum / float64(len(s.Trials))
	s.MaxRegret = max
}
