package explain

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"dyndesign/internal/core"
)

var bg = context.Background()

// phaseModel is a phase-structured synthetic cost model: stage i's
// favored index is phases[i] and executes at cost 20 under it versus
// 100 bare. Structure 2 is a noise index whose cost dips pseudo-randomly
// per (stage, seed) — occasionally below the favored index by more than
// a round-trip transition, which is exactly the transient an
// unconstrained solver overfits to and a change-bounded one ignores.
// Reseeding redraws the noise while preserving the phases, so the model
// doubles as its own audit perturbation.
type phaseModel struct {
	seed   int64
	phases []int
}

func (m *phaseModel) noise(stage int) float64 {
	x := uint64(m.seed)*0x9e3779b97f4a7c15 + uint64(stage)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func (m *phaseModel) Exec(stage int, c core.Config) float64 {
	if c == core.ConfigOf(2) {
		return 100 - 100*m.noise(stage)
	}
	if c == core.ConfigOf(m.phases[stage]) {
		return 20
	}
	return 100
}

func (m *phaseModel) Trans(from, to core.Config) float64 {
	added, removed := from.Diff(to)
	return 4*float64(len(added)) + 1*float64(len(removed))
}

func (m *phaseModel) Size(c core.Config) float64 { return float64(c.Count()) }

// phaseProblem builds the canonical fixture: two 20-stage phases
// favoring index 0 then index 1, noise index 2 available, k = 2 under
// FreeEndpoints.
func phaseProblem(seed int64, parallelism int) *core.Problem {
	const stages = 40
	phases := make([]int, stages)
	for i := stages / 2; i < stages; i++ {
		phases[i] = 1
	}
	return &core.Problem{
		Stages:      stages,
		Configs:     []core.Config{0, core.ConfigOf(0), core.ConfigOf(1), core.ConfigOf(2)},
		K:           2,
		Policy:      core.FreeEndpoints,
		Model:       &phaseModel{seed: seed, phases: phases},
		Parallelism: parallelism,
	}
}

func perturbPhase(p *core.Problem) PerturbFunc {
	base := p.Model.(*phaseModel)
	return func(trial int, seed int64) (*core.Problem, error) {
		pp := *p
		pp.Model = &phaseModel{seed: seed, phases: base.phases}
		return &pp, nil
	}
}

func buildFixture(t *testing.T, parallelism int) (*core.Problem, *core.Solution, *Explanation) {
	t.Helper()
	p := phaseProblem(1, parallelism)
	sol, err := core.SolveKAware(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(bg, p, sol, Options{
		Strategy:       core.StrategyKAware,
		StructureNames: []string{"I(a)", "I(b)", "I(noise)"},
		KSweepDelta:    2,
		AuditTrials:    5,
		AuditSeed:      100,
		Perturb:        perturbPhase(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, sol, e
}

// TestAttributionAccounts pins the cost-attribution invariants: the
// transition list's TRANS costs sum — bit for bit — to the solution's
// TransCost, run EXEC totals reconcile with ExecCost, and every removal
// penalty of an exactly-solved sequence is (numerically) non-negative.
func TestAttributionAccounts(t *testing.T) {
	p, sol, e := buildFixture(t, 1)
	if e.Cost != sol.Cost || e.ExecCost != sol.ExecCost || e.TransCost != sol.TransCost {
		t.Fatalf("explanation cost header diverges from solution")
	}
	var trans float64
	for _, tr := range e.Transitions {
		trans += tr.TransCost
	}
	if trans != sol.TransCost {
		t.Errorf("transition TRANS sum %v != solution TransCost %v", trans, sol.TransCost)
	}
	// Stages before the first change execute under a run with no
	// transition entry; reconcile EXEC by adding them back.
	covered := 0.0
	for _, tr := range e.Transitions {
		covered += tr.RunExecCost
	}
	uncovered := 0.0
	for i := 0; i < p.Stages && sol.Designs[i] == p.Initial; i++ {
		uncovered += p.Model.Exec(i, sol.Designs[i])
	}
	if !almostEqual(covered+uncovered, sol.ExecCost) {
		t.Errorf("run EXEC totals %v + leading run %v != ExecCost %v", covered, uncovered, sol.ExecCost)
	}
	for _, tr := range e.Transitions {
		if tr.RunLength == 0 {
			continue // final teardown
		}
		if tr.RemovalPenalty < -1e-6 {
			t.Errorf("@stage %d: exact solution has negative removal penalty %v", tr.Stage, tr.RemovalPenalty)
		}
		if len(tr.TopStages) == 0 || len(tr.TopStages) > 3 {
			t.Errorf("@stage %d: %d top stages", tr.Stage, len(tr.TopStages))
		}
		for i := 1; i < len(tr.TopStages); i++ {
			if tr.TopStages[i].Delta > tr.TopStages[i-1].Delta {
				t.Errorf("@stage %d: top stages not sorted by delta", tr.Stage)
			}
		}
	}
	if sol.Changes < 1 || sol.Changes > 2 {
		t.Fatalf("fixture solved with %d changes under k=2", sol.Changes)
	}
}

// TestKSweepShape pins the counterfactual curve: spans [0, k+delta],
// monotone non-increasing, marginals consistent, and the recommended
// bound's point matches the solution cost.
func TestKSweepShape(t *testing.T) {
	p, sol, e := buildFixture(t, 1)
	if len(e.KSweep) != p.K+2+1 {
		t.Fatalf("sweep has %d points, want %d", len(e.KSweep), p.K+3)
	}
	for i, pt := range e.KSweep {
		if pt.K != i {
			t.Fatalf("point %d has K=%d", i, pt.K)
		}
		if !pt.Feasible {
			t.Fatalf("point k=%d infeasible under FreeEndpoints", i)
		}
		if i > 0 {
			if pt.Cost > e.KSweep[i-1].Cost {
				t.Errorf("sweep not monotone at k=%d", i)
			}
			if !almostEqual(pt.Marginal, e.KSweep[i-1].Cost-pt.Cost) {
				t.Errorf("k=%d marginal %v inconsistent", i, pt.Marginal)
			}
		}
	}
	if !almostEqual(e.KSweep[p.K].Cost, sol.Cost) {
		t.Errorf("sweep at recommended k=%d is %v, solution cost %v", p.K, e.KSweep[p.K].Cost, sol.Cost)
	}
}

// TestAuditConstrainedGeneralizes is the acceptance criterion: on a
// phase-structured trace with transient noise, the k=2 design's
// held-out regret over perturbed replays stays at or below the
// unconstrained design's — the unconstrained optimum overfits the noise
// index, the constrained one cannot afford to.
func TestAuditConstrainedGeneralizes(t *testing.T) {
	_, _, e := buildFixture(t, 1)
	a := e.Audit
	if a == nil {
		t.Fatal("audit missing")
	}
	if len(a.Constrained.Trials) != 5 || len(a.Unconstrained.Trials) != 5 {
		t.Fatalf("trial counts %d/%d", len(a.Constrained.Trials), len(a.Unconstrained.Trials))
	}
	if a.Unconstrained.Changes <= a.Constrained.Changes {
		t.Fatalf("fixture too tame: unconstrained used %d changes vs constrained %d — nothing to overfit",
			a.Unconstrained.Changes, a.Constrained.Changes)
	}
	if a.Constrained.MeanRegret > a.Unconstrained.MeanRegret {
		t.Errorf("constrained held-out regret %v exceeds unconstrained %v",
			a.Constrained.MeanRegret, a.Unconstrained.MeanRegret)
	}
	if a.Unconstrained.MeanRegret <= 0 {
		t.Errorf("unconstrained design shows no held-out regret (%v); the audit fixture lost its teeth",
			a.Unconstrained.MeanRegret)
	}
	for _, tr := range append(append([]Trial(nil), a.Constrained.Trials...), a.Unconstrained.Trials...) {
		if tr.Regret < 0 {
			t.Errorf("negative regret %v for seed %d: oracle beaten by a fixed design", tr.Regret, tr.Seed)
		}
	}
}

// TestBuildDeterministicParallel pins that the whole explanation —
// attribution, sweep, and audit — is bit-identical between the serial
// path and Parallelism > 1 (run under -race in CI).
func TestBuildDeterministicParallel(t *testing.T) {
	_, _, serial := buildFixture(t, 1)
	_, _, par := buildFixture(t, 4)
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Errorf("parallel explanation diverges from serial:\n%s\nvs\n%s", sj, pj)
	}
}

// TestBuildValidation pins the error paths.
func TestBuildValidation(t *testing.T) {
	p := phaseProblem(1, 1)
	if _, err := Build(bg, p, nil, Options{}); err == nil {
		t.Error("Build accepted a nil solution")
	}
	if _, err := Build(bg, p, &core.Solution{Designs: make([]core.Config, 3)}, Options{}); err == nil {
		t.Error("Build accepted a solution of the wrong length")
	}
}

// TestExplanationJSONRoundTrip pins the schema version and that the
// JSON form round-trips losslessly.
func TestExplanationJSONRoundTrip(t *testing.T) {
	_, _, e := buildFixture(t, 1)
	if e.SchemaVersion != 1 {
		t.Fatalf("schema version %d", e.SchemaVersion)
	}
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Explanation
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	buf2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Error("JSON round trip not lossless")
	}
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
