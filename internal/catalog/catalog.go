// Package catalog maintains the metadata of a database: table schemas and
// index definitions. It is purely descriptive — physical structures (heap
// files, B+-trees) are owned by the engine, which keeps them in sync with
// the catalog. The catalog is versioned: every DDL operation bumps the
// version, which lets cached plans and cost matrices detect staleness.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dyndesign/internal/types"
)

// IndexDef describes a secondary index: an ordered list of key columns on
// one table. The canonical name of an index on columns (a, b) of table t
// is "I(a,b)"; names are unique per table.
type IndexDef struct {
	Table   string
	Columns []string
}

// Name returns the canonical index name, e.g. "I(a,b)".
func (d IndexDef) Name() string {
	return "I(" + strings.Join(d.Columns, ",") + ")"
}

// Equal reports whether two definitions index the same columns of the
// same table in the same order.
func (d IndexDef) Equal(o IndexDef) bool {
	if !strings.EqualFold(d.Table, o.Table) || len(d.Columns) != len(o.Columns) {
		return false
	}
	for i := range d.Columns {
		if !strings.EqualFold(d.Columns[i], o.Columns[i]) {
			return false
		}
	}
	return true
}

// ParseIndexName parses a canonical index name like "I(a,b)" into its
// column list.
func ParseIndexName(name string) ([]string, error) {
	if !strings.HasPrefix(name, "I(") || !strings.HasSuffix(name, ")") {
		return nil, fmt.Errorf("catalog: %q is not a canonical index name (want \"I(col,...)\")", name)
	}
	inner := name[2 : len(name)-1]
	if inner == "" {
		return nil, fmt.Errorf("catalog: index name %q has no columns", name)
	}
	cols := strings.Split(inner, ",")
	for i := range cols {
		cols[i] = strings.TrimSpace(cols[i])
		if cols[i] == "" {
			return nil, fmt.Errorf("catalog: index name %q has an empty column", name)
		}
	}
	return cols, nil
}

// Table is the catalog entry for one table.
type Table struct {
	Name   string
	Schema *types.Schema
}

// Catalog is the metadata store. It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table   // lower(name) -> table
	indexes map[string]IndexDef // lower(table) + "\x00" + lower(index name) -> def
	version int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string]IndexDef),
	}
}

// Version returns the current catalog version; it increases on every DDL.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

func indexKey(table, name string) string {
	return strings.ToLower(table) + "\x00" + strings.ToLower(name)
}

// CreateTable registers a table. The name must be unused.
func (c *Catalog) CreateTable(name string, schema *types.Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema}
	c.tables[key] = t
	c.version++
	return t, nil
}

// DropTable removes a table and all of its index definitions.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; !exists {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	prefix := key + "\x00"
	for k := range c.indexes {
		if strings.HasPrefix(k, prefix) {
			delete(c.indexes, k)
		}
	}
	c.version++
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// Tables returns all tables, sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers an index definition after validating that the table
// exists, every key column exists, and no equivalent index is present.
func (c *Catalog) AddIndex(def IndexDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(def.Table)]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", def.Table)
	}
	if len(def.Columns) == 0 {
		return fmt.Errorf("catalog: index on %q has no columns", def.Table)
	}
	seen := make(map[string]struct{}, len(def.Columns))
	for _, col := range def.Columns {
		if t.Schema.ColumnIndex(col) < 0 {
			return fmt.Errorf("catalog: table %q has no column %q", def.Table, col)
		}
		lower := strings.ToLower(col)
		if _, dup := seen[lower]; dup {
			return fmt.Errorf("catalog: index repeats column %q", col)
		}
		seen[lower] = struct{}{}
	}
	key := indexKey(def.Table, def.Name())
	if _, exists := c.indexes[key]; exists {
		return fmt.Errorf("catalog: index %s on %q already exists", def.Name(), def.Table)
	}
	c.indexes[key] = def
	c.version++
	return nil
}

// DropIndex removes an index definition by canonical name.
func (c *Catalog) DropIndex(table, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := indexKey(table, name)
	if _, exists := c.indexes[key]; !exists {
		return fmt.Errorf("catalog: index %s on %q does not exist", name, table)
	}
	delete(c.indexes, key)
	c.version++
	return nil
}

// Index looks up an index definition by table and canonical name.
func (c *Catalog) Index(table, name string) (IndexDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	def, ok := c.indexes[indexKey(table, name)]
	return def, ok
}

// TableIndexes returns the index definitions on a table, sorted by name.
func (c *Catalog) TableIndexes(table string) []IndexDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	prefix := strings.ToLower(table) + "\x00"
	var out []IndexDef
	for k, def := range c.indexes {
		if strings.HasPrefix(k, prefix) {
			out = append(out, def)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
