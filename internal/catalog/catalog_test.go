package catalog

import (
	"testing"

	"dyndesign/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
	)
}

func TestIndexDefName(t *testing.T) {
	d := IndexDef{Table: "t", Columns: []string{"a", "b"}}
	if d.Name() != "I(a,b)" {
		t.Errorf("Name() = %q", d.Name())
	}
	d = IndexDef{Table: "t", Columns: []string{"a"}}
	if d.Name() != "I(a)" {
		t.Errorf("Name() = %q", d.Name())
	}
}

func TestIndexDefEqual(t *testing.T) {
	a := IndexDef{Table: "t", Columns: []string{"a", "b"}}
	if !a.Equal(IndexDef{Table: "T", Columns: []string{"A", "B"}}) {
		t.Error("case-insensitive equal failed")
	}
	if a.Equal(IndexDef{Table: "t", Columns: []string{"b", "a"}}) {
		t.Error("column order ignored")
	}
	if a.Equal(IndexDef{Table: "t", Columns: []string{"a"}}) {
		t.Error("different lengths equal")
	}
	if a.Equal(IndexDef{Table: "u", Columns: []string{"a", "b"}}) {
		t.Error("different tables equal")
	}
}

func TestParseIndexName(t *testing.T) {
	cols, err := ParseIndexName("I(a,b)")
	if err != nil || len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("ParseIndexName = %v, %v", cols, err)
	}
	cols, err = ParseIndexName("I( a , b )")
	if err != nil || len(cols) != 2 || cols[0] != "a" {
		t.Errorf("ParseIndexName with spaces = %v, %v", cols, err)
	}
	for _, bad := range []string{"", "I()", "I(a,)", "Ia,b)", "I(a,b", "X(a)"} {
		if _, err := ParseIndexName(bad); err == nil {
			t.Errorf("ParseIndexName(%q) succeeded", bad)
		}
	}
}

func TestCreateAndLookupTable(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	tab, err := c.Table("T") // case-insensitive
	if err != nil || tab.Name != "t" {
		t.Errorf("Table(T) = %v, %v", tab, err)
	}
	if _, err := c.CreateTable("T", testSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := c.CreateTable("", testSchema()); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table found")
	}
}

func TestVersionBumpsOnDDL(t *testing.T) {
	c := New()
	v0 := c.Version()
	c.CreateTable("t", testSchema())
	v1 := c.Version()
	if v1 <= v0 {
		t.Error("CreateTable did not bump version")
	}
	c.AddIndex(IndexDef{Table: "t", Columns: []string{"a"}})
	if c.Version() <= v1 {
		t.Error("AddIndex did not bump version")
	}
}

func TestAddIndexValidation(t *testing.T) {
	c := New()
	c.CreateTable("t", testSchema())
	if err := c.AddIndex(IndexDef{Table: "missing", Columns: []string{"a"}}); err == nil {
		t.Error("index on missing table accepted")
	}
	if err := c.AddIndex(IndexDef{Table: "t", Columns: nil}); err == nil {
		t.Error("index with no columns accepted")
	}
	if err := c.AddIndex(IndexDef{Table: "t", Columns: []string{"zzz"}}); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := c.AddIndex(IndexDef{Table: "t", Columns: []string{"a", "A"}}); err == nil {
		t.Error("index with repeated column accepted")
	}
	if err := c.AddIndex(IndexDef{Table: "t", Columns: []string{"a", "b"}}); err != nil {
		t.Errorf("valid index rejected: %v", err)
	}
	if err := c.AddIndex(IndexDef{Table: "t", Columns: []string{"a", "b"}}); err == nil {
		t.Error("duplicate index accepted")
	}
}

func TestDropIndex(t *testing.T) {
	c := New()
	c.CreateTable("t", testSchema())
	def := IndexDef{Table: "t", Columns: []string{"a"}}
	c.AddIndex(def)
	if err := c.DropIndex("t", "I(a)"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("t", "I(a)"); err == nil {
		t.Error("double drop accepted")
	}
	if _, ok := c.Index("t", "I(a)"); ok {
		t.Error("dropped index still present")
	}
}

func TestTableIndexesSorted(t *testing.T) {
	c := New()
	c.CreateTable("t", testSchema())
	c.CreateTable("u", testSchema())
	c.AddIndex(IndexDef{Table: "t", Columns: []string{"b"}})
	c.AddIndex(IndexDef{Table: "t", Columns: []string{"a"}})
	c.AddIndex(IndexDef{Table: "u", Columns: []string{"a"}})
	idxs := c.TableIndexes("t")
	if len(idxs) != 2 || idxs[0].Name() != "I(a)" || idxs[1].Name() != "I(b)" {
		t.Errorf("TableIndexes = %v", idxs)
	}
}

func TestDropTableRemovesIndexes(t *testing.T) {
	c := New()
	c.CreateTable("t", testSchema())
	c.AddIndex(IndexDef{Table: "t", Columns: []string{"a"}})
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("double drop table accepted")
	}
	if len(c.TableIndexes("t")) != 0 {
		t.Error("indexes survived table drop")
	}
	if len(c.Tables()) != 0 {
		t.Error("tables remain after drop")
	}
}

func TestTablesSorted(t *testing.T) {
	c := New()
	c.CreateTable("zeta", testSchema())
	c.CreateTable("alpha", testSchema())
	tabs := c.Tables()
	if len(tabs) != 2 || tabs[0].Name != "alpha" || tabs[1].Name != "zeta" {
		t.Errorf("Tables() = %v", tabs)
	}
}
