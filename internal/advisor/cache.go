package advisor

import (
	"sync"
	"sync/atomic"
)

// execCacheShards is the shard count of the what-if EXEC memo. 64
// shards keep lock contention negligible even when every core of a
// large machine fills the cost matrix at once, at a fixed cost of a few
// kilobytes per model.
const execCacheShards = 64

type execShard struct {
	mu sync.RWMutex
	m  map[execKey]float64
}

// execCache is a sharded, mutex-guarded memo for EXEC(stage, config)
// what-if results. It is safe for concurrent use, so one advisor
// Problem can be solved by several strategies (or a parallel matrix
// build) at the same time. Lookup and hit counters feed the
// recommendation's instrumentation.
//
// On a miss the value is computed outside any lock and stored after;
// two goroutines racing on the same cold key both compute it, but the
// model is deterministic so they store the same value — wasted work,
// never wrong answers.
type execCache struct {
	shards  [execCacheShards]execShard
	lookups atomic.Int64
	hits    atomic.Int64
}

func newExecCache() *execCache {
	c := &execCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[execKey]float64)
	}
	return c
}

// shard maps a key to its shard with a Fibonacci mix so consecutive
// stages spread instead of clustering.
func (c *execCache) shard(k execKey) *execShard {
	h := (uint64(k.stage) ^ uint64(k.cfg)<<32 ^ uint64(k.cfg)>>32) * 0x9E3779B97F4A7C15
	return &c.shards[h>>(64-6)] // top 6 bits: [0, 64)
}

func (c *execCache) get(k execKey) (float64, bool) {
	s := c.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	c.lookups.Add(1)
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

func (c *execCache) put(k execKey, v float64) {
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// CostStats is the lightweight instrumentation of one advisor run's
// what-if costing: how many statement costings the cost model actually
// performed and how well the EXEC memo served the solvers.
type CostStats struct {
	// WhatIfCalls counts individual what-if statement costings — the
	// unit the paper's Figure 4 discussion treats as the advisor's
	// dominant expense.
	WhatIfCalls int64
	// CacheLookups and CacheHits describe the EXEC memo: every
	// CostModel.Exec call is one lookup, served from the cache when the
	// (stage, configuration) pair was costed before.
	CacheLookups int64
	CacheHits    int64
}

// HitRate returns the fraction of EXEC lookups served from the memo, 0
// when nothing was looked up.
func (s CostStats) HitRate() float64 {
	if s.CacheLookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheLookups)
}

// add accumulates counters (used when several models back one run).
func (s CostStats) add(o CostStats) CostStats {
	return CostStats{
		WhatIfCalls:  s.WhatIfCalls + o.WhatIfCalls,
		CacheLookups: s.CacheLookups + o.CacheLookups,
		CacheHits:    s.CacheHits + o.CacheHits,
	}
}

// statsProvider is implemented by cost models that expose CostStats.
type statsProvider interface {
	costStats() CostStats
}
