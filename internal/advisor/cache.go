package advisor

import (
	"sync"
	"sync/atomic"

	"dyndesign/internal/core"
)

// execCacheShards is the shard count of the what-if EXEC memo. 64
// shards keep lock contention negligible even when every core of a
// large machine fills the cost matrix at once, at a fixed cost of a few
// kilobytes per memo.
const execCacheShards = 64

// execKey identifies one EXEC memo cell: the content fingerprint of a
// workload segment plus the configuration it was costed under. Keying
// by segment content instead of stage index is what lets one memo
// outlive a single problem — a sliding window shifts every stage index
// between solves, but an unchanged segment keeps its key, so the
// advisor service re-costs only the statements that actually entered
// the window.
type execKey struct {
	seg uint64
	cfg core.Config
}

type execShard struct {
	mu sync.RWMutex
	m  map[execKey]int // key -> slot index
	// Slot storage: parallel slices so the clock hand can walk
	// insertion order. ref bits are set atomically under RLock by
	// readers and inspected by the evicting writer.
	keys []execKey
	vals []float64
	ref  []uint32
	hand int
}

// ExecMemo is the sharded, mutex-guarded memo for EXEC(segment, config)
// what-if results. It is safe for concurrent use, so one advisor
// Problem can be solved by several strategies (or a parallel matrix
// build) at the same time, and — because keys are segment content
// hashes — it may be retained across recommendations: pass one via
// Options.Memo and a re-solve warm-starts from every segment it has
// seen before.
//
// A capacity caps the number of retained entries; beyond it each shard
// evicts with a clock (second-chance) sweep, so a statement stream of
// unbounded length runs in bounded memory while looping workloads keep
// their working set. Capacity 0 means unbounded — the right choice for
// one-shot runs.
//
// On a miss the value is computed outside any lock and stored after;
// two goroutines racing on the same cold key both compute it, but the
// model is deterministic so they store the same value — wasted work,
// never wrong answers.
type ExecMemo struct {
	shards   [execCacheShards]execShard
	capShard int // max slots per shard; 0 = unbounded

	lookups       atomic.Int64
	hits          atomic.Int64
	entries       atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64

	// genMu guards the world generation: the fingerprint of the cost
	// world (statistics epoch + physical descriptions) the entries were
	// computed under. A solve against a different world purges the memo
	// instead of replaying costs from dead statistics.
	genMu sync.Mutex
	gen   uint64
	genOK bool
}

// NewMemo builds an EXEC memo bounded to about capacity entries
// (rounded up to a per-shard cap); capacity <= 0 means unbounded. Pass
// the memo via Options.Memo to share it across recommendations.
func NewMemo(capacity int) *ExecMemo {
	c := &ExecMemo{}
	if capacity > 0 {
		c.capShard = (capacity + execCacheShards - 1) / execCacheShards
		if c.capShard < 1 {
			c.capShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].m = make(map[execKey]int)
	}
	return c
}

// newExecCache is the fresh unbounded memo a one-shot problem gets when
// the caller does not retain one.
func newExecCache() *ExecMemo { return NewMemo(0) }

// validate pins the memo to the model's world fingerprint; entries
// computed under a different world (refreshed statistics, changed
// physical descriptions) are purged first. Callers that share a memo
// serialize their solves (the advisor service does), so a purge never
// races a solve in flight.
func (c *ExecMemo) validate(world uint64) {
	c.genMu.Lock()
	defer c.genMu.Unlock()
	if c.genOK && c.gen == world {
		return
	}
	if c.genOK {
		c.purge()
		c.invalidations.Add(1)
	}
	c.gen, c.genOK = world, true
}

// purge empties every shard. Called with genMu held.
func (c *ExecMemo) purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		c.entries.Add(-int64(len(s.keys)))
		s.m = make(map[execKey]int)
		s.keys, s.vals, s.ref = nil, nil, nil
		s.hand = 0
		s.mu.Unlock()
	}
}

// shard maps a key to its shard with a Fibonacci mix so consecutive
// segment hashes spread instead of clustering.
func (c *ExecMemo) shard(k execKey) *execShard {
	h := (k.seg ^ uint64(k.cfg)<<32 ^ uint64(k.cfg)>>32) * 0x9E3779B97F4A7C15
	return &c.shards[h>>(64-6)] // top 6 bits: [0, 64)
}

func (c *ExecMemo) get(k execKey) (float64, bool) {
	s := c.shard(k)
	s.mu.RLock()
	i, ok := s.m[k]
	var v float64
	if ok {
		v = s.vals[i]
		atomic.StoreUint32(&s.ref[i], 1)
	}
	s.mu.RUnlock()
	c.lookups.Add(1)
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

func (c *ExecMemo) put(k execKey, v float64) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.m[k]; ok {
		s.vals[i] = v
		return
	}
	if c.capShard > 0 && len(s.keys) >= c.capShard {
		// Clock sweep: give referenced slots a second chance, evict the
		// first unreferenced one. Terminates within two laps — the
		// first lap clears every ref bit it passes.
		for {
			if s.hand >= len(s.keys) {
				s.hand = 0
			}
			if atomic.LoadUint32(&s.ref[s.hand]) != 0 {
				atomic.StoreUint32(&s.ref[s.hand], 0)
				s.hand++
				continue
			}
			break
		}
		i := s.hand
		s.hand++
		delete(s.m, s.keys[i])
		s.keys[i] = k
		s.vals[i] = v
		atomic.StoreUint32(&s.ref[i], 1)
		s.m[k] = i
		c.evictions.Add(1)
		return
	}
	s.m[k] = len(s.keys)
	s.keys = append(s.keys, k)
	s.vals = append(s.vals, v)
	s.ref = append(s.ref, 1)
	c.entries.Add(1)
}

// MemoStats describes an EXEC memo's occupancy and lifetime counters —
// the observability surface a capped, long-lived memo needs so growth
// and eviction pressure are measurable instead of invisible.
type MemoStats struct {
	// Entries is the current occupancy; Capacity the configured bound
	// (0 = unbounded).
	Entries  int64
	Capacity int
	// Lookups and Hits count EXEC memo probes over the memo's lifetime.
	Lookups int64
	Hits    int64
	// Evictions counts entries displaced by the clock sweep once a
	// shard reached its cap.
	Evictions int64
	// Invalidations counts whole-memo purges forced by a cost-world
	// change (refreshed statistics).
	Invalidations int64
}

// HitRate returns the fraction of lookups served from the memo, 0 when
// nothing was looked up.
func (s MemoStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Stats returns a snapshot of the memo's counters.
func (c *ExecMemo) Stats() MemoStats {
	capacity := 0
	if c.capShard > 0 {
		capacity = c.capShard * execCacheShards
	}
	return MemoStats{
		Entries:       c.entries.Load(),
		Capacity:      capacity,
		Lookups:       c.lookups.Load(),
		Hits:          c.hits.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// CostStats is the lightweight instrumentation of one advisor run's
// what-if costing: how many statement costings the cost model actually
// performed and how well the EXEC memo served the solvers.
type CostStats struct {
	// WhatIfCalls counts individual what-if statement costings — the
	// unit the paper's Figure 4 discussion treats as the advisor's
	// dominant expense. It counts costings the solvers *demanded* (memo
	// misses × statements, attempted evaluations included even when
	// costing fails); memo hits never count.
	WhatIfCalls int64
	// CacheLookups and CacheHits describe the EXEC memo: every
	// CostModel.Exec call is one lookup, served from the cache when the
	// (segment, configuration) pair was costed before.
	CacheLookups int64
	CacheHits    int64
	// PlanTableBuilds counts per-statement plan-table compilations —
	// the "one histogram pass per access path" work the batched costing
	// layer performs once per (stage, statement) instead of once per
	// configuration. PlanTableBytes is the heap those tables retain.
	PlanTableBuilds int64
	PlanTableBytes  int64
	// BatchedLookups counts configurations evaluated through the
	// BatchExec frontier entry point (memo hits included).
	BatchedLookups int64
}

// HitRate returns the fraction of EXEC lookups served from the memo, 0
// when nothing was looked up.
func (s CostStats) HitRate() float64 {
	if s.CacheLookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheLookups)
}

// add accumulates counters (used when several models back one run).
func (s CostStats) add(o CostStats) CostStats {
	return CostStats{
		WhatIfCalls:     s.WhatIfCalls + o.WhatIfCalls,
		CacheLookups:    s.CacheLookups + o.CacheLookups,
		CacheHits:       s.CacheHits + o.CacheHits,
		PlanTableBuilds: s.PlanTableBuilds + o.PlanTableBuilds,
		PlanTableBytes:  s.PlanTableBytes + o.PlanTableBytes,
		BatchedLookups:  s.BatchedLookups + o.BatchedLookups,
	}
}

// statsProvider is implemented by cost models that expose CostStats.
type statsProvider interface {
	costStats() CostStats
}
