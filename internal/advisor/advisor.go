// Package advisor is the user-facing design advisor: it binds the
// engine's what-if cost model to the solvers in internal/core and turns
// workload traces into dynamic physical design recommendations.
//
// The advisor plays the role of the paper's "constrained dynamic design
// advisor": given a workload sequence, an initial configuration, a space
// bound b and a change bound k, it recommends a sequence of physical
// designs. The classical static advisor and the unconstrained dynamic
// advisor of Agrawal et al. are the k = 0 and k = ∞ special cases.
package advisor

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"dyndesign/internal/catalog"
	"dyndesign/internal/core"
	"dyndesign/internal/cost"
	"dyndesign/internal/engine"
	"dyndesign/internal/obs"
	"dyndesign/internal/sql"
	"dyndesign/internal/workload"
)

// DesignSpace is the set of candidate structures and configurations a
// recommendation may use.
type DesignSpace struct {
	Table string
	// Structures are the candidate indexes; configuration bit i refers
	// to Structures[i]. At most core.MaxStructures entries.
	Structures []catalog.IndexDef
	// Configs optionally fixes the allowed configurations explicitly
	// (the paper's experiments use {∅, I(a), I(b), I(c), I(d), I(a,b),
	// I(c,d)}). When nil, all subsets of Structures within the space
	// bound are enumerated (which requires len(Structures) <= 20).
	Configs []core.Config
}

// StructureNames returns the canonical names of the candidate
// structures, indexed like configuration bits.
func (s *DesignSpace) StructureNames() []string {
	names := make([]string, len(s.Structures))
	for i, def := range s.Structures {
		names[i] = def.Name()
	}
	return names
}

// SingleIndexConfigs returns the configuration list used by the paper's
// experiments: the empty configuration plus one configuration per
// structure ("a physical design configuration consists of at most one
// index").
func SingleIndexConfigs(numStructures int) []core.Config {
	out := make([]core.Config, 0, numStructures+1)
	out = append(out, core.Config(0))
	for i := 0; i < numStructures; i++ {
		out = append(out, core.ConfigOf(i))
	}
	return out
}

// Options configures a recommendation run.
type Options struct {
	// K is the change bound; core.Unconstrained disables it.
	K int
	// Policy selects the change-counting rule (default FreeEndpoints,
	// which reproduces the paper's Table 2; see DESIGN.md §3).
	Policy core.ChangePolicy
	// SpaceBound is b in pages; 0 means unbounded.
	SpaceBound float64
	// Strategy picks the solver (default the exact k-aware graph).
	Strategy core.Strategy
	// SegmentSize groups consecutive statements into optimization
	// stages (default 1: one stage per statement, as in the paper's
	// problem definition). Labelled workloads never mix labels within a
	// segment.
	SegmentSize int
	// Initial is C0. The default is the empty configuration.
	Initial core.Config
	// Final optionally constrains the configuration after the last
	// statement (the paper's experiments pin it to empty).
	Final *core.Config

	// Timeout, when positive, bounds the wall-clock time of each solve
	// attempt (each ladder rung when Fallback is on, the single solve
	// otherwise).
	Timeout time.Duration
	// MaxWhatIfCalls, when positive, bounds the EXEC evaluations each
	// solve attempt may request; exceeding it aborts the attempt with
	// core.ErrWhatIfBudget.
	MaxWhatIfCalls int64
	// Fallback enables the resilient degradation ladder: when the
	// chosen strategy times out, exhausts its budget, faults, or
	// panics, progressively cheaper strategies answer instead
	// (core.AutoLadder — which also leads with the partitioned solver
	// for candidate spans above the exact hypercube ceiling), ending at
	// LastKnownGood when set.
	Fallback bool
	// LastKnownGood optionally supplies a previously recommended design
	// sequence adopted (after revalidation) when every solving rung
	// fails. Only consulted when Fallback is on.
	LastKnownGood *core.Solution

	// Parallelism bounds the worker count of the cost-table build and
	// the data-parallel solver phases (core.Problem.Parallelism): 0
	// means one worker per CPU, 1 forces the serial path. Parallel and
	// serial solves produce bit-identical results.
	Parallelism int

	// Memo, when non-nil, supplies a retained what-if EXEC memo instead
	// of the fresh per-problem default. Memo entries are keyed by
	// segment content, so a long-running service that re-solves
	// overlapping windows re-costs only statements it has not seen;
	// stale entries are purged automatically when the cost world
	// (statistics, physical descriptions) changes. Callers sharing one
	// memo must serialize their solves. See NewMemo.
	Memo *ExecMemo

	// Cache, when non-nil, supplies a retained solve cache
	// (core.SolveCache) instead of the fresh per-problem default, so a
	// re-solve of an unchanged window warm-starts from the previous
	// solve's cost tables. The cache invalidates itself when the model
	// version changes (see core.VersionedModel).
	Cache *core.SolveCache

	// Tracer, when non-nil, receives spans from the whole advisor
	// pipeline: statement validation and problem assembly
	// ("advisor.problem"), the end-to-end recommendation
	// ("advisor.recommend"), and every solver-phase span below them
	// (DESIGN.md §9). The nil default is the disabled tracer.
	Tracer *obs.Tracer

	// Explain, when non-nil, attaches decision provenance to the
	// recommendation after a successful solve: cost attribution per
	// design change, the counterfactual k-sweep, and the overfitting
	// audit (see internal/explain and DESIGN.md §10). Equivalent to
	// calling Advisor.Explain afterwards.
	Explain *ExplainOptions

	// Calibrate, when non-nil, replays a deterministic sample of the
	// workload on the live engine after a successful solve and attaches
	// the measured-vs-estimated calibration run report (see
	// internal/calib and DESIGN.md §16). Equivalent to calling
	// Advisor.Calibrate afterwards; the nil default adds nothing to the
	// solve path.
	Calibrate *CalibrateOptions
}

// resilient reports whether the options ask for the supervised solve
// path: any robustness knob turns it on, since budgets and deadlines
// are enforced by the supervisor.
func (o *Options) resilient() bool {
	return o.Fallback || o.Timeout > 0 || o.MaxWhatIfCalls > 0
}

// Advisor recommends dynamic physical designs for one table of a
// database.
type Advisor struct {
	db    *engine.Database
	space DesignSpace
	table cost.TablePhys
	phys  []cost.IndexPhys // hypothetical physical description per structure
}

// New builds an advisor over an analyzed table. The table must have
// statistics (Database.Analyze) so what-if estimates are meaningful.
func New(db *engine.Database, space DesignSpace) (*Advisor, error) {
	if len(space.Structures) == 0 {
		return nil, fmt.Errorf("advisor: design space has no candidate structures")
	}
	if len(space.Structures) > core.MaxStructures {
		return nil, fmt.Errorf("advisor: %d candidate structures exceed the maximum %d",
			len(space.Structures), core.MaxStructures)
	}
	tp, err := db.TablePhys(space.Table)
	if err != nil {
		return nil, err
	}
	if tp.Stats == nil {
		return nil, fmt.Errorf("advisor: table %q has no statistics; run Analyze first", space.Table)
	}
	a := &Advisor{db: db, space: space, table: tp}
	for _, def := range space.Structures {
		ip, err := cost.HypotheticalIndex(def, tp)
		if err != nil {
			return nil, err
		}
		a.phys = append(a.phys, ip)
	}
	return a, nil
}

// Space returns the advisor's design space.
func (a *Advisor) Space() *DesignSpace { return &a.space }

// StatsFingerprint returns the content hash of the tuned table's
// statistics — the cost-world epoch under which every what-if estimate
// is computed. Durable advisor state (installed design, last-known-good
// solution, drift-detector costs) records it at snapshot time: a
// restart whose statistics hash differently must treat cost-derived
// state as stale instead of replaying estimates from a dead world.
func (a *Advisor) StatsFingerprint() uint64 { return a.table.Stats.Fingerprint() }

// physPool recycles the per-call []cost.IndexPhys assembly of the
// scalar costing path, so monitoring loops (the drift alerter costs
// every observed statement, the calibrator every sample) do not pay one
// slice allocation per what-if call.
var physPool = sync.Pool{New: func() any {
	return &physScratch{buf: make([]cost.IndexPhys, 0, core.MaxStructures)}
}}

type physScratch struct{ buf []cost.IndexPhys }

// StatementCost returns the what-if cost of one statement under a
// configuration of the design space — the EXEC(S, C) primitive, exposed
// for monitoring tools like the drift alerter.
func (a *Advisor) StatementCost(s workload.Statement, c core.Config) (float64, error) {
	sc := physPool.Get().(*physScratch)
	defer physPool.Put(sc)
	idxs := sc.buf[:0]
	for b := uint64(c); b != 0; b &= b - 1 {
		bit := bits.TrailingZeros64(b)
		if bit >= len(a.phys) {
			return 0, fmt.Errorf("advisor: configuration bit %d outside the design space", bit)
		}
		idxs = append(idxs, a.phys[bit])
	}
	sc.buf = idxs
	return cost.StatementCost(s.Stmt, a.table, idxs)
}

// whatIfModel implements core.FallibleModel over the engine's what-if
// cost functions. It is safe for concurrent use: the EXEC memo is a
// sharded, mutex-guarded cache, TRANS and SIZE are pure functions of
// immutable physical descriptions, and the call counter is atomic — so
// one Problem can be shared by several solver goroutines and by the
// parallel matrix build.
type whatIfModel struct {
	table cost.TablePhys
	phys  []cost.IndexPhys
	segs  []workload.Segment
	// segHash fingerprints each segment's statement content; it keys
	// the EXEC memo so entries survive the stage renumbering a sliding
	// window causes between solves.
	segHash []uint64
	// version memoizes ModelVersion: the world and the segments are
	// immutable once the problem is assembled, and the solve cache
	// consults the version on every table fetch and replay peek.
	version uint64
	memo    *ExecMemo
	// whatIfCalls counts statement costings demanded of the model —
	// memo misses times statements, attempted evaluations included even
	// when costing fails; memo hits never count. See CostStats.
	whatIfCalls atomic.Int64
	// plan[i] holds stage i's compiled statement plan tables, built
	// lazily under planLocks[i] on the first memo-missing evaluation
	// and read lock-free afterwards. Compilation failures are
	// deliberately not cached (mirroring the memo), so a healthy retry
	// recompiles instead of replaying a dead error.
	plan      []atomic.Pointer[stagePlans]
	planLocks []sync.Mutex
	// planBuilds, planBytes, and batchedLookups instrument the batched
	// costing layer: plan tables compiled, bytes they retain, and
	// configurations evaluated through BatchExec.
	planBuilds     atomic.Int64
	planBytes      atomic.Int64
	batchedLookups atomic.Int64
	// errMu guards execErr, the first costing failure since the last
	// TakeErr drain (the core.FallibleModel contract).
	errMu   sync.Mutex
	execErr error
	// interOnce guards interactions, the memoized ExecInteractions
	// cliques (computed lazily — only the partitioned solver asks).
	interOnce    sync.Once
	interactions []core.Config
}

// stagePlans is one stage's compiled costing: a plan table per
// statement of the segment.
type stagePlans struct {
	tables []*cost.PlanTable
}

// fnv64 is FNV-1a over a byte sequence fed piecewise.
type fnv64 uint64

func newFnv() fnv64 { return 14695981039346656037 }

func (h *fnv64) byte(b byte) { *h = (*h ^ fnv64(b)) * 1099511628211 }

func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *fnv64) str(s string) {
	h.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// segmentHash fingerprints a segment's statement content — the part of
// EXEC(stage, ·) that depends on the workload.
func segmentHash(seg workload.Segment) uint64 {
	h := newFnv()
	h.u64(uint64(len(seg.Statements)))
	for _, s := range seg.Statements {
		h.str(s.SQL)
	}
	return uint64(h)
}

// worldVersion fingerprints the cost world the model evaluates in: the
// statistics epoch plus every physical description. It deliberately
// excludes the workload segments — the EXEC memo keys those per entry,
// so an unchanged world keeps memo entries valid across windows.
func (m *whatIfModel) worldVersion() uint64 {
	h := newFnv()
	h.str(m.table.Name)
	h.u64(math.Float64bits(m.table.Rows))
	h.u64(math.Float64bits(m.table.HeapPages))
	h.u64(m.table.Stats.Fingerprint())
	h.u64(uint64(len(m.phys)))
	for _, ip := range m.phys {
		h.str(ip.Def.Name())
		h.u64(math.Float64bits(ip.Height))
		h.u64(math.Float64bits(ip.LeafPages))
		h.u64(math.Float64bits(ip.TotalPages))
		h.u64(uint64(ip.KeyBytes))
	}
	return uint64(h)
}

// ModelVersion implements core.VersionedModel: a fingerprint of
// everything EXEC, TRANS, and SIZE depend on — the cost world plus the
// workload segments behind each stage. Equal versions mean two models
// compute identical cost tables, which is what lets a retained
// core.SolveCache warm-start the re-solve of an unchanged window and
// forces a rebuild the moment statistics are refreshed under a
// long-lived model. The value is memoized at problem assembly — the
// model is immutable afterwards.
func (m *whatIfModel) ModelVersion() uint64 { return m.version }

// computeVersion derives the ModelVersion fingerprint; called once
// after segHash is populated.
func (m *whatIfModel) computeVersion() uint64 {
	h := newFnv()
	h.u64(m.worldVersion())
	h.u64(uint64(len(m.segHash)))
	for _, sh := range m.segHash {
		h.u64(sh)
	}
	return uint64(h)
}

// stagePlans returns stage's compiled plan tables, compiling them on
// first use. Compilation is the "one histogram pass per access path"
// step: each statement's selectivities and candidate path costs are
// derived exactly once, after which every configuration evaluation is
// O(statements) masked table lookups.
func (m *whatIfModel) stagePlans(stage int) (*stagePlans, error) {
	if sp := m.plan[stage].Load(); sp != nil {
		return sp, nil
	}
	m.planLocks[stage].Lock()
	defer m.planLocks[stage].Unlock()
	if sp := m.plan[stage].Load(); sp != nil {
		return sp, nil
	}
	stmts := m.segs[stage].Statements
	sp := &stagePlans{tables: make([]*cost.PlanTable, len(stmts))}
	retained := 0
	for i, s := range stmts {
		pt, err := cost.CompilePlan(s.Stmt, m.table, m.phys)
		if err != nil {
			return nil, fmt.Errorf("advisor: costing validated statement %q: %w", s.SQL, err)
		}
		sp.tables[i] = pt
		retained += pt.Bytes()
	}
	m.plan[stage].Store(sp)
	m.planBuilds.Add(int64(len(stmts)))
	m.planBytes.Add(int64(retained))
	return sp, nil
}

// Exec implements core.CostModel: the summed what-if cost of the
// segment's statements under configuration c, evaluated through the
// stage's compiled plan tables (bit-identical to summing
// cost.StatementCost, per the PlanTable contract). Statements are
// validated when the problem is built, so a compile error here means
// the model's world changed mid-solve; the failure is recorded for
// TakeErr, the evaluation returns +Inf, and nothing is memoized so a
// healthy retry can recompute the cell.
func (m *whatIfModel) Exec(stage int, c core.Config) float64 {
	key := execKey{seg: m.segHash[stage], cfg: c}
	if v, ok := m.memo.get(key); ok {
		return v
	}
	// Count the attempted statement costings before knowing whether
	// they succeed: the counter attributes demanded work per cell, and
	// an error path that skipped it would under-report exactly when
	// diagnosing matters most.
	m.whatIfCalls.Add(int64(len(m.segs[stage].Statements)))
	sp, err := m.stagePlans(stage)
	if err != nil {
		m.recordErr(err)
		return math.Inf(1)
	}
	total := 0.0
	for _, pt := range sp.tables {
		total += pt.Cost(uint64(c))
	}
	m.memo.put(key, total)
	return total
}

// BatchExec implements core.BatchCostModel: one memo probe per
// configuration, plan-table evaluation for the misses. The per-stage
// setup — segment hash, statement count, plan-table fetch — is paid
// once per call instead of once per cell, and no per-call index-slice
// assembly happens at all.
func (m *whatIfModel) BatchExec(stage int, configs []core.Config, out []float64) []float64 {
	if cap(out) < len(configs) {
		out = make([]float64, len(configs))
	}
	out = out[:len(configs)]
	m.batchedLookups.Add(int64(len(configs)))
	seg := m.segHash[stage]
	var sp *stagePlans
	var spErr error
	loaded := false
	missed := int64(0)
	for j, c := range configs {
		key := execKey{seg: seg, cfg: c}
		if v, ok := m.memo.get(key); ok {
			out[j] = v
			continue
		}
		missed++
		if !loaded {
			loaded = true
			sp, spErr = m.stagePlans(stage)
			if spErr != nil {
				m.recordErr(spErr)
			}
		}
		if spErr != nil {
			out[j] = math.Inf(1)
			continue
		}
		total := 0.0
		for _, pt := range sp.tables {
			total += pt.Cost(uint64(c))
		}
		m.memo.put(key, total)
		out[j] = total
	}
	if missed > 0 {
		m.whatIfCalls.Add(missed * int64(len(m.segs[stage].Statements)))
	}
	return out
}

// recordErr keeps the first costing failure for TakeErr.
func (m *whatIfModel) recordErr(err error) {
	m.errMu.Lock()
	if m.execErr == nil {
		m.execErr = err
	}
	m.errMu.Unlock()
}

// TakeErr implements core.FallibleModel: it returns the first costing
// failure since the previous drain and clears it.
func (m *whatIfModel) TakeErr() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	err := m.execErr
	m.execErr = nil
	return err
}

// costStats implements statsProvider.
func (m *whatIfModel) costStats() CostStats {
	return CostStats{
		WhatIfCalls:     m.whatIfCalls.Load(),
		CacheLookups:    m.memo.lookups.Load(),
		CacheHits:       m.memo.hits.Load(),
		PlanTableBuilds: m.planBuilds.Load(),
		PlanTableBytes:  m.planBytes.Load(),
		BatchedLookups:  m.batchedLookups.Load(),
	}
}

// Trans implements core.CostModel: build costs for added structures plus
// drop costs for removed ones.
func (m *whatIfModel) Trans(from, to core.Config) float64 {
	added, removed := from.Diff(to)
	total := 0.0
	for _, s := range added {
		total += cost.BuildCost(m.phys[s], m.table)
	}
	total += float64(len(removed)) * cost.DropCost()
	return total
}

// TransParts implements core.AdditiveTransModel: TRANS decomposes per
// structure into one build cost per added index and one flat drop cost
// per removed one — the capability that lets the exact solvers replace
// the all-pairs relaxation with the hypercube lattice kernel.
func (m *whatIfModel) TransParts() (add, drop []float64) {
	add = make([]float64, len(m.phys))
	drop = make([]float64, len(m.phys))
	for s := range m.phys {
		add[s] = cost.BuildCost(m.phys[s], m.table)
		drop[s] = cost.DropCost()
	}
	return add, drop
}

// ExecInteractions implements core.InteractionModel: one clique per
// workload statement holding the candidate indexes that can change that
// statement's access-path choice. The planner picks the single cheapest
// index path per statement, so a statement's cost depends only on the
// indexes relevant to it — indexes whose solo what-if probe beats (or
// ties, given the planner's index-preferring tie-break) the heap scan.
// Index-maintenance costs (INSERT, and the write half of UPDATE/DELETE)
// are per-structure additive and so contribute no interaction edges.
// Two indexes never sharing a clique therefore never co-affect any
// EXEC term, which is exactly the independence SolvePartitioned
// factors on.
func (m *whatIfModel) ExecInteractions() []core.Config {
	m.interOnce.Do(func() {
		seen := make(map[core.Config]bool)
		for i := range m.segs {
			// The plan tables record each statement's relevant mask —
			// the indexes whose solo probe beats (or ties, given the
			// planner's index-preferring tie-break) the heap scan —
			// which is exactly the clique the solo ChooseAccess probes
			// used to derive. Compile failures surface through Exec,
			// not here; a failing stage just contributes no cliques,
			// as its per-index probes would all have errored too.
			sp, err := m.stagePlans(i)
			if err != nil {
				continue
			}
			for _, pt := range sp.tables {
				cl := core.Config(pt.RelevantMask())
				if cl.Count() < 2 || seen[cl] {
					continue // singletons add no edges
				}
				seen[cl] = true
				m.interactions = append(m.interactions, cl)
			}
		}
	})
	return m.interactions
}

// Size implements core.CostModel: total pages of the configuration.
func (m *whatIfModel) Size(c core.Config) float64 {
	total := 0.0
	for b := uint64(c); b != 0; b &= b - 1 {
		total += m.phys[bits.TrailingZeros64(b)].TotalPages
	}
	return total
}

// Problem assembles the core problem instance for a workload under the
// given options. It validates every statement against the schema up
// front.
func (a *Advisor) Problem(w *workload.Workload, opts Options) (_ *core.Problem, _ []workload.Segment, err error) {
	sp := opts.Tracer.Start("advisor.problem")
	defer func() { sp.End(obs.Int("statements", int64(w.Len())), obs.Bool("ok", err == nil)) }()
	if w.Len() == 0 {
		return nil, nil, fmt.Errorf("advisor: empty workload")
	}
	// Validate statements once: cost errors are schema/type errors and
	// configuration-independent.
	for i, s := range w.Statements {
		switch s.Stmt.(type) {
		case *sql.Select, *sql.Insert, *sql.Update, *sql.Delete:
			if _, err := cost.StatementCost(s.Stmt, a.table, nil); err != nil {
				return nil, nil, fmt.Errorf("advisor: statement %d (%q): %w", i, s.SQL, err)
			}
		default:
			return nil, nil, fmt.Errorf("advisor: statement %d (%q) is not a workload statement", i, s.SQL)
		}
	}
	segSize := opts.SegmentSize
	if segSize <= 0 {
		segSize = 1
	}
	segs := w.Segments(segSize)
	memo := opts.Memo
	if memo == nil {
		memo = newExecCache()
	}
	model := &whatIfModel{
		table: a.table,
		phys:  a.phys,
		segs:  segs,
		memo:  memo,
	}
	model.segHash = make([]uint64, len(segs))
	for i, seg := range segs {
		model.segHash[i] = segmentHash(seg)
	}
	model.plan = make([]atomic.Pointer[stagePlans], len(segs))
	model.planLocks = make([]sync.Mutex, len(segs))
	model.version = model.computeVersion()
	// Pin the memo to this model's cost world: entries computed under
	// refreshed statistics or different physical descriptions are
	// purged instead of replayed.
	memo.validate(model.worldVersion())
	configs := a.space.Configs
	if configs == nil {
		var err error
		configs, err = core.EnumerateConfigs(len(a.space.Structures), model.Size, opts.SpaceBound)
		if err != nil {
			return nil, nil, err
		}
	}
	cache := opts.Cache
	if cache == nil {
		cache = core.NewSolveCache()
	}
	p := &core.Problem{
		Stages:      len(segs),
		Configs:     configs,
		Initial:     opts.Initial,
		Final:       opts.Final,
		SpaceBound:  opts.SpaceBound,
		K:           opts.K,
		Policy:      opts.Policy,
		Model:       model,
		Parallelism: opts.Parallelism,
		Cache:       cache,
		Metrics:     &core.Metrics{},
		Tracer:      opts.Tracer,
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, segs, nil
}

// Recommend solves the constrained dynamic design problem for the
// workload and packages the result. It is RecommendContext under
// context.Background().
func (a *Advisor) Recommend(w *workload.Workload, opts Options) (*Recommendation, error) {
	return a.RecommendContext(context.Background(), w, opts)
}

// RecommendContext is Recommend with cooperative cancellation: the
// solve stops promptly when ctx is cancelled or its deadline expires.
// When the options ask for robustness (Timeout, MaxWhatIfCalls, or
// Fallback), the solve runs under the resilient supervisor and the
// recommendation records which ladder rung answered.
//
// On failure the returned recommendation is non-nil whenever a problem
// was built: it carries the problem, the costing instrumentation, and
// any rung reports gathered before the failure (its Solution is nil),
// so an interrupted run can still render partial diagnostics.
func (a *Advisor) RecommendContext(ctx context.Context, w *workload.Workload, opts Options) (rec *Recommendation, err error) {
	outer := opts.Tracer.Start("advisor.recommend")
	defer func() {
		outer.End(obs.String("table", a.space.Table), obs.Int("k", int64(opts.K)),
			obs.Bool("ok", err == nil))
	}()
	p, segs, err := a.Problem(w, opts)
	if err != nil {
		return nil, err
	}
	strategy := opts.Strategy
	if strategy == "" {
		strategy = core.StrategyKAware
	}
	rec = &Recommendation{
		Table:          a.space.Table,
		StructureNames: a.space.StructureNames(),
		Structures:     a.space.Structures,
		Segments:       segs,
		Workload:       w,
		Problem:        p,
		Strategy:       strategy,
		opts:           opts,
	}
	start := time.Now()
	sol, err := a.solveProblem(ctx, p, strategy, opts, rec)
	rec.Elapsed = time.Since(start)
	rec.fillInstrumentation(p)
	if err != nil {
		return rec, err
	}
	rec.Solution = sol
	if opts.Explain != nil {
		if _, err := a.Explain(ctx, rec, *opts.Explain); err != nil {
			return rec, fmt.Errorf("advisor: explaining recommendation: %w", err)
		}
	}
	if opts.Calibrate != nil {
		if _, err := a.Calibrate(rec, *opts.Calibrate); err != nil {
			return rec, fmt.Errorf("advisor: calibrating recommendation: %w", err)
		}
	}
	return rec, nil
}

// solveProblem runs the plain or supervised solve path per the options,
// annotating rec with rung diagnostics on the supervised path.
func (a *Advisor) solveProblem(ctx context.Context, p *core.Problem, strategy core.Strategy, opts Options, rec *Recommendation) (*core.Solution, error) {
	if opts.resilient() {
		ladder := []core.Strategy{strategy}
		if opts.Fallback {
			// AutoLadder prepends the partitioned solver when the
			// candidate span is above the exact hypercube ceiling — the
			// regime where the primary would silently degrade to the
			// dense scan (see core.ErrLatticeTooLarge).
			ladder = core.AutoLadder(p, strategy)
		}
		ropts := core.ResilientOptions{
			Ladder:         ladder,
			RungTimeout:    opts.Timeout,
			MaxWhatIfCalls: opts.MaxWhatIfCalls,
		}
		if opts.Fallback {
			ropts.LastKnownGood = opts.LastKnownGood
		}
		res, err := core.SolveResilient(ctx, p, ropts)
		if res != nil {
			rec.RungReports = res.Reports
			rec.Rung = res.Rung
			rec.Degraded = res.Degraded
		}
		if err != nil {
			return nil, err
		}
		return res.Solution, nil
	}
	sol, err := core.Solve(ctx, p, strategy)
	if ferr := takeModelErr(p.Model); ferr != nil && err == nil {
		sol, err = nil, ferr
	}
	if err != nil {
		return nil, err
	}
	rec.Rung = strategy
	return sol, nil
}

// takeModelErr drains the model's recorded costing failure when it is
// fallible.
func takeModelErr(m core.CostModel) error {
	if fm, ok := m.(core.FallibleModel); ok {
		return fm.TakeErr()
	}
	return nil
}

// RecommendStatic recommends the best single static design for the whole
// workload — the classical advisor baseline, i.e. the constrained
// problem with k = 0 under FreeEndpoints.
func (a *Advisor) RecommendStatic(w *workload.Workload, opts Options) (*Recommendation, error) {
	opts.K = 0
	opts.Policy = core.FreeEndpoints
	opts.Strategy = core.StrategyKAware
	return a.Recommend(w, opts)
}
