package advisor

import (
	"strings"
	"testing"

	"dyndesign/internal/core"
	"dyndesign/internal/explain"
)

// TestRecommendExplain pins the advisor-level provenance wiring: a
// recommendation solved with Options.Explain carries a schema-versioned
// explanation whose attribution reconciles with the solution, whose
// k-sweep is monotone, and whose audit replays the design against
// block-bootstrap resamples of the real workload.
func TestRecommendExplain(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	opts := paperOpts(2)
	opts.Explain = &ExplainOptions{AuditTrials: 2, AuditSeed: 9}
	rec, err := adv.Recommend(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := rec.Explanation
	if e == nil {
		t.Fatal("Options.Explain did not attach an explanation")
	}
	if e.SchemaVersion != 1 || e.K != 2 || e.Stages != rec.Problem.Stages {
		t.Fatalf("explanation header = %+v", e)
	}
	if e.Cost != rec.Solution.Cost || e.ExecCost != rec.Solution.ExecCost || e.TransCost != rec.Solution.TransCost {
		t.Error("explanation cost header diverges from solution")
	}
	var trans float64
	for _, tr := range e.Transitions {
		trans += tr.TransCost
	}
	if trans != rec.Solution.TransCost {
		t.Errorf("transition TRANS sum %v != solution TransCost %v", trans, rec.Solution.TransCost)
	}
	// Interior transitions carry workload positions and SQL excerpts.
	for _, tr := range e.Transitions {
		if tr.RunLength == 0 {
			continue
		}
		if tr.Statement < 0 || tr.Statement >= w.Len() {
			t.Errorf("@stage %d: statement index %d outside the workload", tr.Stage, tr.Statement)
		}
		for _, s := range tr.TopStages {
			if s.SQL == "" {
				t.Errorf("@stage %d: stage %d impact missing its SQL excerpt", tr.Stage, s.Stage)
			}
		}
	}
	if len(e.KSweep) != 5 { // k=2 + default delta 2, plus k=0
		t.Fatalf("sweep has %d points", len(e.KSweep))
	}
	for i := 1; i < len(e.KSweep); i++ {
		if e.KSweep[i].Cost > e.KSweep[i-1].Cost {
			t.Errorf("k-sweep not monotone at k=%d", i)
		}
	}
	a := e.Audit
	if a == nil {
		t.Fatal("audit missing")
	}
	if len(a.Constrained.Trials) != 2 || len(a.Unconstrained.Trials) != 2 {
		t.Fatalf("audit trials %d/%d", len(a.Constrained.Trials), len(a.Unconstrained.Trials))
	}
	if a.Constrained.K != 2 || a.Unconstrained.K != core.Unconstrained {
		t.Fatalf("audit sides k = %d/%d", a.Constrained.K, a.Unconstrained.K)
	}
	for _, side := range []*explain.AuditSide{&a.Constrained, &a.Unconstrained} {
		for _, tr := range side.Trials {
			if tr.Regret < 0 {
				t.Errorf("negative held-out regret %v (seed %d, k=%d)", tr.Regret, tr.Seed, side.K)
			}
		}
	}
	var sb strings.Builder
	rec.Render(&sb)
	for _, want := range []string{"Decision provenance", "cost of constraint", "overfitting audit"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered recommendation missing %q", want)
		}
	}
}

// TestExplainRequiresSolution pins the standalone Explain error path.
func TestExplainRequiresSolution(t *testing.T) {
	_, adv := testAdvisor(t)
	if _, err := adv.Explain(bg, &Recommendation{}, ExplainOptions{}); err == nil {
		t.Error("Explain accepted an unsolved recommendation")
	}
}
