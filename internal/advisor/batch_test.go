package advisor

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// TestBatchExecMatchesExec pins the tentpole invariant at the model
// layer: BatchExec over a frontier is bit-for-bit identical to per-call
// Exec, on cold and warm memos alike.
func TestBatchExecMatchesExec(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	p, _, err := adv.Problem(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	bm, ok := p.Model.(core.BatchCostModel)
	if !ok {
		t.Fatal("advisor problem model does not implement core.BatchCostModel")
	}
	// Scalar twin with its own memo, so neither side sees the other's
	// cached values.
	p2, _, err := adv.Problem(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for stage := 0; stage < p.Stages; stage++ {
		out = bm.BatchExec(stage, p.Configs, out[:0])
		if len(out) != len(p.Configs) {
			t.Fatalf("stage %d: BatchExec returned %d values for %d configs", stage, len(out), len(p.Configs))
		}
		for j, c := range p.Configs {
			want := p2.Model.Exec(stage, c)
			if math.Float64bits(out[j]) != math.Float64bits(want) {
				t.Fatalf("stage %d config %v: batch %v != scalar %v", stage, c, out[j], want)
			}
		}
		// Warm pass: every value now comes from the memo; must not drift.
		warm := bm.BatchExec(stage, p.Configs, nil)
		for j := range warm {
			if math.Float64bits(warm[j]) != math.Float64bits(out[j]) {
				t.Fatalf("stage %d config %v: warm batch %v != cold %v", stage, p.Configs[j], warm[j], out[j])
			}
		}
	}
}

// brokenModel builds a whatIfModel whose only segment contains
// statements that parse but cannot be costed (unknown column),
// bypassing the validation Problem performs — the shape of a world that
// changed mid-solve.
func brokenModel(t *testing.T, adv *Advisor) (*whatIfModel, int) {
	t.Helper()
	stmts := []workload.Statement{
		workload.MustStatement("SELECT nope FROM t"),
		workload.MustStatement("SELECT a FROM t WHERE a = 1"),
	}
	segs := []workload.Segment{{Statements: stmts}}
	m := &whatIfModel{table: adv.table, phys: adv.phys, segs: segs, memo: newExecCache()}
	m.segHash = []uint64{segmentHash(segs[0])}
	m.plan = make([]atomic.Pointer[stagePlans], 1)
	m.planLocks = make([]sync.Mutex, 1)
	m.version = m.computeVersion()
	m.memo.validate(m.worldVersion())
	return m, len(stmts)
}

// TestExecCountsAttemptedStatementsOnError pins the accounting fix:
// what-if calls count the statements a costing *attempted*, even when
// the attempt fails, and failed cells are never memoized.
func TestExecCountsAttemptedStatementsOnError(t *testing.T) {
	_, adv := testAdvisor(t)
	m, nstmt := brokenModel(t, adv)
	if v := m.Exec(0, 0); !math.IsInf(v, 1) {
		t.Fatalf("Exec on a broken world = %v, want +Inf", v)
	}
	if got := m.whatIfCalls.Load(); got != int64(nstmt) {
		t.Fatalf("whatIfCalls after failed Exec = %d, want %d (attempted statements must count)", got, nstmt)
	}
	if err := m.TakeErr(); err == nil {
		t.Fatal("TakeErr returned nil after a costing failure")
	}
	// The failure is not cached: a retry attempts (and counts) again.
	if v := m.Exec(0, 0); !math.IsInf(v, 1) {
		t.Fatalf("second Exec = %v, want +Inf", v)
	}
	if got := m.whatIfCalls.Load(); got != 2*int64(nstmt) {
		t.Fatalf("whatIfCalls after retry = %d, want %d", got, 2*nstmt)
	}

	// Same contract on the batched path.
	m2, _ := brokenModel(t, adv)
	configs := []core.Config{0, 1, 2}
	out := m2.BatchExec(0, configs, nil)
	for j, v := range out {
		if !math.IsInf(v, 1) {
			t.Fatalf("batch cell %d on a broken world = %v, want +Inf", j, v)
		}
	}
	if got := m2.whatIfCalls.Load(); got != int64(len(configs)*nstmt) {
		t.Fatalf("whatIfCalls after failed batch = %d, want %d", got, len(configs)*nstmt)
	}
	if err := m2.TakeErr(); err == nil {
		t.Fatal("TakeErr returned nil after a batched costing failure")
	}
	if got := m2.costStats().BatchedLookups; got != int64(len(configs)) {
		t.Fatalf("BatchedLookups = %d, want %d", got, len(configs))
	}
}

// TestExecWarmMemoZeroAllocs pins the arena property of the hot path: a
// memo-served Exec performs no heap allocation at all.
func TestExecWarmMemoZeroAllocs(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	p, _, err := adv.Problem(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Model.(*whatIfModel)
	cfg := p.Configs[len(p.Configs)-1]
	m.Exec(0, cfg)
	if allocs := testing.AllocsPerRun(100, func() { m.Exec(0, cfg) }); allocs != 0 {
		t.Fatalf("warm-memo Exec allocates %.1f objects per call, want 0", allocs)
	}
}

// TestStatementCostPooledScratch pins the satellite fix: the scalar
// what-if path assembles its []cost.IndexPhys in pooled scratch instead
// of allocating per call. The average must amortize below one
// allocation per call (an occasional GC may empty the pool).
func TestStatementCostPooledScratch(t *testing.T) {
	_, adv := testAdvisor(t)
	s := workload.MustStatement("INSERT INTO t VALUES (1, 2, 3, 4)")
	full := core.Config(1)<<uint(len(adv.phys)) - 1
	if _, err := adv.StatementCost(s, full); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := adv.StatementCost(s, full); err != nil {
			panic(err)
		}
	})
	if allocs >= 1 {
		t.Fatalf("StatementCost allocates %.2f objects per call; pooled scratch should amortize below 1", allocs)
	}
}

// TestParallelSolveMatchesSerial requires the batched frontier costing
// to be deterministic under parallel matrix builds: a Parallelism=4
// solve must produce bit-identical designs and cost to a serial one.
func TestParallelSolveMatchesSerial(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	serial := paperOpts(2)
	serial.Parallelism = 1
	par := paperOpts(2)
	par.Parallelism = 4
	r1, err := adv.Recommend(w, serial)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := adv.Recommend(w, par)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.Solution.Cost) != math.Float64bits(r2.Solution.Cost) {
		t.Fatalf("parallel cost %v != serial cost %v", r2.Solution.Cost, r1.Solution.Cost)
	}
	if len(r1.Solution.Designs) != len(r2.Solution.Designs) {
		t.Fatalf("design length mismatch: %d vs %d", len(r2.Solution.Designs), len(r1.Solution.Designs))
	}
	for i := range r1.Solution.Designs {
		if r1.Solution.Designs[i] != r2.Solution.Designs[i] {
			t.Fatalf("stage %d: parallel design %v != serial %v", i, r2.Solution.Designs[i], r1.Solution.Designs[i])
		}
	}
	if r2.Stats.BatchedLookups == 0 {
		t.Fatal("solve did not route any frontier through BatchExec")
	}
	if r2.Stats.PlanTableBuilds == 0 {
		t.Fatal("solve compiled no plan tables")
	}
}
