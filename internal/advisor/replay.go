package advisor

import (
	"fmt"
	"time"

	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/workload"
)

// ReplayReport measures what a workload actually cost when executed with
// a recommended design sequence applied — the quantity Figure 3 plots.
// All page counts are logical page accesses from the engine's counter.
type ReplayReport struct {
	// QueryPages is the pages charged by workload statements.
	QueryPages int64
	// TransitionPages is the pages charged by applying design changes
	// (index builds and drops), including the initial installation and
	// final teardown.
	TransitionPages int64
	// Changes is the number of configuration changes applied (all of
	// them, endpoint transitions included).
	Changes int
	// Statements is the number of statements executed.
	Statements int
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
}

// TotalPages is query plus transition pages.
func (r ReplayReport) TotalPages() int64 { return r.QueryPages + r.TransitionPages }

// Replay executes a workload on a live database while applying a design
// sequence at its change points: before each statement the database's
// index set is reconciled with the design for that statement, and after
// the last statement with the problem's final configuration when set.
//
// The design sequence is given per statement (see
// Recommendation.PerStatement); the workload may differ from the one the
// recommendation was computed from, as in the paper's W2/W3 experiment,
// but must have the same length.
func Replay(db *engine.Database, w *workload.Workload, rec *Recommendation, designs []core.Config) (ReplayReport, error) {
	if len(designs) != w.Len() {
		return ReplayReport{}, fmt.Errorf("advisor: %d designs for %d statements", len(designs), w.Len())
	}
	stats := db.AccessStats()
	report := ReplayReport{}
	start := time.Now()

	current, err := currentConfig(db, rec)
	if err != nil {
		return ReplayReport{}, err
	}
	apply := func(to core.Config) error {
		if to == current {
			return nil
		}
		before := stats.Snapshot()
		for _, ddl := range rec.ddlFor(current, to) {
			if _, err := db.Exec(ddl); err != nil {
				return fmt.Errorf("advisor: applying %q: %w", ddl, err)
			}
		}
		report.TransitionPages += stats.Snapshot().Sub(before).Total()
		report.Changes++
		current = to
		return nil
	}

	for i, stmt := range w.Statements {
		if err := apply(designs[i]); err != nil {
			return report, err
		}
		before := stats.Snapshot()
		if _, err := db.ExecStmt(stmt.Stmt); err != nil {
			return report, fmt.Errorf("advisor: executing statement %d (%q): %w", i, stmt.SQL, err)
		}
		report.QueryPages += stats.Snapshot().Sub(before).Total()
		report.Statements++
	}
	if rec.Problem.Final != nil {
		if err := apply(*rec.Problem.Final); err != nil {
			return report, err
		}
	}
	report.Wall = time.Since(start)
	return report, nil
}

// currentConfig maps the database's materialized indexes onto the
// recommendation's structure bits. Indexes outside the design space are
// an error: the replay would not know when to drop them.
func currentConfig(db *engine.Database, rec *Recommendation) (core.Config, error) {
	names, err := db.IndexNames(rec.Table)
	if err != nil {
		return 0, err
	}
	byName := make(map[string]int, len(rec.Structures))
	for i, def := range rec.Structures {
		byName[def.Name()] = i
	}
	var c core.Config
	for _, n := range names {
		bit, ok := byName[n]
		if !ok {
			return 0, fmt.Errorf("advisor: table has index %s outside the design space", n)
		}
		c = c.With(bit)
	}
	return c, nil
}
