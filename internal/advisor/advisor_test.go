package advisor

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"dyndesign/internal/candidates"
	"dyndesign/internal/catalog"
	"dyndesign/internal/core"
	"dyndesign/internal/engine"
	"dyndesign/internal/workload"
)

// bg is the context used by tests that don't exercise cancellation.
var bg = context.Background()

const (
	testRows  = 30000
	testBlock = 50
)

// buildDB loads the paper table at test scale.
func buildDB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.New()
	db.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	domain := workload.DomainForRows(testRows)
	rng := rand.New(rand.NewSource(21))
	var sb strings.Builder
	for i := 0; i < testRows; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO t VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d)",
				rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain), rng.Int63n(domain))
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	return db
}

func paperSpace() DesignSpace {
	structures := candidates.PaperStructures("t")
	return DesignSpace{Table: "t", Structures: structures, Configs: SingleIndexConfigs(len(structures))}
}

func testAdvisor(t testing.TB) (*engine.Database, *Advisor) {
	t.Helper()
	db := buildDB(t)
	adv, err := New(db, paperSpace())
	if err != nil {
		t.Fatal(err)
	}
	return db, adv
}

func testWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	w, err := workload.PaperWorkload("W1", testRows, testBlock, 77)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func paperOpts(k int) Options {
	f := core.Config(0)
	return Options{K: k, Final: &f}
}

func TestNewValidation(t *testing.T) {
	db := buildDB(t)
	if _, err := New(db, DesignSpace{Table: "t"}); err == nil {
		t.Error("empty design space accepted")
	}
	if _, err := New(db, DesignSpace{Table: "missing", Structures: candidates.PaperStructures("missing")}); err == nil {
		t.Error("missing table accepted")
	}
	big := make([]catalog.IndexDef, 65)
	for i := range big {
		big[i] = catalog.IndexDef{Table: "t", Columns: []string{"a"}}
	}
	if _, err := New(db, DesignSpace{Table: "t", Structures: big}); err == nil {
		t.Error("65 structures accepted")
	}
	bad := DesignSpace{Table: "t", Structures: []catalog.IndexDef{{Table: "t", Columns: []string{"zzz"}}}}
	if _, err := New(db, bad); err == nil {
		t.Error("structure on unknown column accepted")
	}
	// Unanalyzed table refused.
	db2 := engine.New()
	db2.MustExec("CREATE TABLE t (a INT, b INT, c INT, d INT)")
	if _, err := New(db2, paperSpace()); err == nil {
		t.Error("unanalyzed table accepted")
	}
}

func TestSingleIndexConfigs(t *testing.T) {
	cfgs := SingleIndexConfigs(3)
	if len(cfgs) != 4 {
		t.Fatalf("configs = %v", cfgs)
	}
	if cfgs[0] != 0 {
		t.Error("first config not empty")
	}
	for i := 1; i < 4; i++ {
		if cfgs[i].Count() != 1 || !cfgs[i].Has(i-1) {
			t.Errorf("config %d = %v", i, cfgs[i])
		}
	}
}

func TestProblemValidatesStatements(t *testing.T) {
	_, adv := testAdvisor(t)
	bad := &workload.Workload{}
	bad.Append("", workload.MustStatement("SELECT zzz FROM t"))
	if _, _, err := adv.Problem(bad, paperOpts(1)); err == nil {
		t.Error("unknown column accepted")
	}
	ddl := &workload.Workload{}
	ddl.Append("", workload.MustStatement("CREATE INDEX ON t (a)"))
	if _, _, err := adv.Problem(ddl, paperOpts(1)); err == nil {
		t.Error("DDL workload statement accepted")
	}
	if _, _, err := adv.Problem(&workload.Workload{}, paperOpts(1)); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestWhatIfModelProperties(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	p, _, err := adv.Problem(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Model
	empty := core.Config(0)
	one := core.ConfigOf(0)
	two := core.ConfigOf(0, 1)

	if m.Trans(one, one) != 0 {
		t.Error("Trans(c, c) != 0")
	}
	if m.Trans(empty, one) <= 0 {
		t.Error("build cost not positive")
	}
	if m.Trans(one, empty) <= 0 {
		t.Error("drop cost not positive")
	}
	if m.Trans(empty, two) <= m.Trans(empty, one) {
		t.Error("building two indexes not costlier than one")
	}
	if math.Abs(m.Size(two)-m.Size(one)-m.Size(core.ConfigOf(1))) > 1e-9 {
		t.Error("Size not additive over structures")
	}
	// EXEC under a useful index is cheaper than under none for an
	// a-query stage. Find one.
	for i, s := range w.Statements {
		if strings.Contains(s.SQL, "WHERE a =") {
			withIdx := m.Exec(i, core.ConfigOf(0)) // I(a)
			without := m.Exec(i, empty)
			if withIdx >= without {
				t.Errorf("stage %d: I(a) exec %.1f >= empty %.1f", i, withIdx, without)
			}
			break
		}
	}
	// Memoization: repeated calls agree.
	if m.Exec(0, one) != m.Exec(0, one) {
		t.Error("Exec not deterministic")
	}
}

func TestRecommendStatic(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.RecommendStatic(w, paperOpts(99))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Solution.Changes != 0 {
		t.Errorf("static recommendation has %d changes", rec.Solution.Changes)
	}
	first := rec.Solution.Designs[0]
	for _, c := range rec.Solution.Designs {
		if c != first {
			t.Fatal("static design varies")
		}
	}
	// For W1 (all four columns queried, one index allowed), the best
	// static single index is I(a,b) or I(c,d); both phases weigh the
	// same, so accept either.
	name := first.Format(rec.StructureNames)
	if name != "{I(a,b)}" && name != "{I(c,d)}" {
		t.Errorf("static design = %s", name)
	}
}

func TestRecommendationHelpers(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	per := rec.PerStatement()
	if len(per) != w.Len() {
		t.Fatalf("PerStatement len = %d", len(per))
	}
	for i := range per {
		if rec.DesignAt(i) != per[i] {
			t.Fatalf("DesignAt(%d) disagrees with PerStatement", i)
		}
	}
	steps := rec.Steps()
	if len(steps) == 0 {
		t.Fatal("no steps for a 2-change design")
	}
	// The first step installs the first design at statement 0; the last
	// tears down to the final (empty) configuration at the end.
	if steps[0].StatementIndex != 0 || steps[0].From != 0 {
		t.Errorf("first step = %+v", steps[0])
	}
	last := steps[len(steps)-1]
	if last.To != 0 || last.StatementIndex != w.Len() {
		t.Errorf("last step = %+v", last)
	}
	// DDL ordering: drops precede creates within a step.
	for _, s := range steps {
		sawCreate := false
		for _, ddl := range s.DDL {
			if strings.HasPrefix(ddl, "CREATE") {
				sawCreate = true
			}
			if strings.HasPrefix(ddl, "DROP") && sawCreate {
				t.Errorf("step %d: DROP after CREATE", s.StatementIndex)
			}
		}
	}
	var sb strings.Builder
	rec.Render(&sb)
	if !strings.Contains(sb.String(), "design steps") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestSegmentedRecommendationMatchesBlockDesigns(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	fine, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	opts := paperOpts(2)
	opts.SegmentSize = testBlock
	coarse, err := adv.Recommend(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Problem.Stages != 30 {
		t.Errorf("segmented stages = %d", coarse.Problem.Stages)
	}
	// Mid-block designs agree between granularities.
	fb, cb := fine.PerBlock(), coarse.PerBlock()
	if len(fb) != len(cb) {
		t.Fatalf("block counts differ: %d vs %d", len(fb), len(cb))
	}
	for i := range fb {
		if fb[i].Design != cb[i].Design {
			t.Errorf("block %d: fine %v vs coarse %v", i, fb[i].Design, cb[i].Design)
		}
	}
}

func TestReplayMatchesEstimate(t *testing.T) {
	db, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	report, err := Replay(db, w, rec, rec.PerStatement())
	if err != nil {
		t.Fatal(err)
	}
	if report.Statements != w.Len() {
		t.Errorf("executed %d statements", report.Statements)
	}
	measured := float64(report.TotalPages())
	est := rec.Solution.Cost
	if measured < est*0.85 || measured > est*1.15 {
		t.Errorf("measured %.0f pages vs estimated %.0f (should agree within 15%%)", measured, est)
	}
	// The final configuration is empty: no indexes remain.
	names, _ := db.IndexNames("t")
	if len(names) != 0 {
		t.Errorf("indexes remain after replay: %v", names)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	db, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(db, w, rec, rec.PerStatement()[:5]); err == nil {
		t.Error("short design list accepted")
	}
	// An index outside the design space blocks replay.
	db.MustExec("CREATE INDEX ON t (b, c)")
	if _, err := Replay(db, w, rec, rec.PerStatement()); err == nil {
		t.Error("foreign index tolerated")
	}
	db.MustExec("DROP INDEX I(b,c) ON t")
	if _, err := Replay(db, w, rec, rec.PerStatement()); err != nil {
		t.Errorf("replay after cleanup failed: %v", err)
	}
}

func TestReplayStartsFromExistingIndexes(t *testing.T) {
	db, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-create an index from the design space: replay must reconcile
	// (drop it) rather than fail.
	db.MustExec("CREATE INDEX ON t (c)")
	if _, err := Replay(db, w, rec, rec.PerStatement()); err != nil {
		t.Fatalf("replay with pre-existing in-space index: %v", err)
	}
	names, _ := db.IndexNames("t")
	if len(names) != 0 {
		t.Errorf("indexes remain: %v", names)
	}
}

func TestUnconstrainedBeatsConstrainedOnTrainingTrace(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	unc, err := adv.Recommend(w, paperOpts(core.Unconstrained))
	if err != nil {
		t.Fatal(err)
	}
	con, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if unc.Solution.Cost >= con.Solution.Cost {
		t.Errorf("unconstrained %.0f not below constrained %.0f", unc.Solution.Cost, con.Solution.Cost)
	}
	if con.Solution.Changes > 2 {
		t.Errorf("constrained changes = %d", con.Solution.Changes)
	}
}

func TestStrategiesAgreeOnFeasibility(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	optimal, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []core.Strategy{core.StrategyGreedySeq, core.StrategyMerge, core.StrategyHybrid} {
		opts := paperOpts(2)
		opts.Strategy = s
		rec, err := adv.Recommend(w, opts)
		if err != nil {
			t.Fatalf("strategy %s: %v", s, err)
		}
		if rec.Solution.Changes > 2 {
			t.Errorf("strategy %s used %d changes", s, rec.Solution.Changes)
		}
		if rec.Solution.Cost < optimal.Solution.Cost-1e-6 {
			t.Errorf("strategy %s beats the optimum", s)
		}
	}
}

func TestSpaceBoundEnumeration(t *testing.T) {
	db := buildDB(t)
	// No explicit Configs: enumerate subsets of four single-column
	// indexes under a bound that fits at most one of them.
	adv, err := New(db, DesignSpace{
		Table: "t",
		Structures: []catalog.IndexDef{
			{Table: "t", Columns: []string{"a"}},
			{Table: "t", Columns: []string{"b"}},
			{Table: "t", Columns: []string{"c"}},
			{Table: "t", Columns: []string{"d"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload(t)
	opts := paperOpts(4)
	opts.SpaceBound = 110 // ~one single-column index at 30k rows
	rec, err := adv.Recommend(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rec.Solution.Designs {
		if c.Count() > 1 {
			t.Fatalf("design %v exceeds the space bound", c)
		}
	}
}

// TestStringColumnWorkload exercises the full advisor pipeline over a
// table with a string column: statistics, hypothetical string-key
// indexes, seeks, and replay must all handle the string codec.
func TestStringColumnWorkload(t *testing.T) {
	db := engine.New()
	db.MustExec("CREATE TABLE ev (kind STRING, node INT, ts INT)")
	kinds := []string{"click", "view", "purchase", "refund"}
	var sb strings.Builder
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 20000; i += 500 {
		sb.Reset()
		sb.WriteString("INSERT INTO ev VALUES ")
		for j := 0; j < 500; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "('%s', %d, %d)", kinds[rng.Intn(len(kinds))], rng.Intn(4000), i+j)
		}
		db.MustExec(sb.String())
	}
	if err := db.Analyze("ev"); err != nil {
		t.Fatal(err)
	}

	// Phase 1 filters by kind, phase 2 by node.
	w := &workload.Workload{Name: "events"}
	for i := 0; i < 300; i++ {
		w.Append("kind", workload.MustStatement(
			fmt.Sprintf("SELECT ts FROM ev WHERE kind = '%s'", kinds[rng.Intn(len(kinds))])))
	}
	for i := 0; i < 300; i++ {
		w.Append("node", workload.MustStatement(
			fmt.Sprintf("SELECT ts FROM ev WHERE node = %d", rng.Intn(4000))))
	}

	structures := candidates.FromWorkload(w, "ev", candidates.Options{MaxWidth: 2, Limit: 8})
	if len(structures) == 0 {
		t.Fatal("no candidates for the string workload")
	}
	adv, err := New(db, DesignSpace{Table: "ev", Structures: structures})
	if err != nil {
		t.Fatal(err)
	}
	f := core.Config(0)
	rec, err := adv.Recommend(w, Options{K: 1, Final: &f, SpaceBound: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Solution.Changes > 1 {
		t.Errorf("changes = %d", rec.Solution.Changes)
	}
	report, err := Replay(db, w, rec, rec.PerStatement())
	if err != nil {
		t.Fatal(err)
	}
	est := rec.Solution.Cost
	if m := float64(report.TotalPages()); m < est*0.7 || m > est*1.3 {
		t.Errorf("string workload: measured %.0f vs estimated %.0f", m, est)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTimeline(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rec.RenderTimeline(&sb, testBlock)
	out := sb.String()
	lines := strings.Count(out, "\n")
	if lines != 31 { // header + 30 blocks
		t.Errorf("timeline has %d lines:\n%s", lines, out)
	}
	if !strings.Contains(out, "{I(a,b)}") || !strings.Contains(out, "{I(c,d)}") {
		t.Errorf("timeline missing designs:\n%s", out)
	}
	// Auto block size also yields 30 rows.
	sb.Reset()
	rec.RenderTimeline(&sb, -1)
	if got := strings.Count(sb.String(), "\n"); got != 31 {
		t.Errorf("auto timeline has %d lines", got)
	}
}

// TestSharedProblemConcurrentStrategies is the advisor-level -race
// stress test: one Problem — one shared what-if model and exec cache —
// solved by several strategies from many goroutines at once. Ranking
// variants are excluded because plain ranking is exponential at small k
// on a problem this long; the core package stress test covers them on a
// small synthetic model.
func TestSharedProblemConcurrentStrategies(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	p, _, err := adv.Problem(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	strategies := []core.Strategy{
		core.StrategyKAware, core.StrategyGreedySeq,
		core.StrategyMerge, core.StrategyHybrid,
	}
	want := map[core.Strategy]float64{}
	for _, s := range strategies {
		sol, err := core.Solve(bg, p, s)
		if err != nil {
			t.Fatalf("strategy %s (serial): %v", s, err)
		}
		want[s] = sol.Cost
	}

	const repetitions = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(strategies)*repetitions)
	for _, s := range strategies {
		for r := 0; r < repetitions; r++ {
			wg.Add(1)
			go func(s core.Strategy) {
				defer wg.Done()
				sol, err := core.Solve(bg, p, s)
				if err != nil {
					errs <- fmt.Errorf("strategy %s: %w", s, err)
					return
				}
				if sol.Cost != want[s] {
					errs <- fmt.Errorf("strategy %s: concurrent cost %v != serial %v", s, sol.Cost, want[s])
				}
			}(s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRecommendationInstrumentation asserts Recommend reports the
// costing-layer counters the ISSUE requires: what-if call count, cache
// hit rate, and matrix-build timing.
func TestRecommendationInstrumentation(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	rec, err := adv.Recommend(w, paperOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.WhatIfCalls <= 0 {
		t.Errorf("WhatIfCalls = %d, want > 0", rec.Stats.WhatIfCalls)
	}
	if rec.Stats.CacheLookups <= 0 {
		t.Errorf("CacheLookups = %d, want > 0", rec.Stats.CacheLookups)
	}
	if hr := rec.Stats.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("HitRate = %v, want within [0, 1]", hr)
	}
	if rec.MatrixBuilds <= 0 {
		t.Errorf("MatrixBuilds = %d, want > 0", rec.MatrixBuilds)
	}
	if rec.MatrixBuildTime <= 0 {
		t.Errorf("MatrixBuildTime = %v, want > 0", rec.MatrixBuildTime)
	}
	// The recommendation re-reads the exec cells the matrix build already
	// priced when it costs the final design: either the exec memo absorbs
	// those calls or the solve cache serves the replay from its tables.
	if rec.Stats.CacheHits == 0 && rec.MatrixReuses == 0 {
		t.Error("neither the exec memo nor the solve cache recorded a hit on a full recommendation")
	}
	if rec.MatrixReuses <= 0 {
		t.Errorf("MatrixReuses = %d, want > 0 (cost replays should be served from cached tables)", rec.MatrixReuses)
	}
	// The rendered report carries the instrumentation line.
	var sb strings.Builder
	rec.Render(&sb)
	if !strings.Contains(sb.String(), "what-if calls") {
		t.Errorf("Render missing instrumentation line:\n%s", sb.String())
	}
}
