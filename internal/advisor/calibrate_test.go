package advisor

import (
	"strings"
	"testing"

	"dyndesign/internal/calib"
)

// TestSolveHotPathZeroAllocWithCalibrationDisabled pins the acceptance
// guarantee that leaving Options.Calibrate nil adds nothing to the
// solve hot path: a memoized EXEC evaluation — the operation the
// solvers issue millions of times — performs zero heap allocations,
// matching the disabled-tracer guarantee. Calibration runs strictly
// after the solve, so the only way it could tax this path is by
// touching the model; this test proves it does not.
func TestSolveHotPathZeroAllocWithCalibrationDisabled(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t).Slice(0, 40)
	opts := paperOpts(2) // Calibrate deliberately nil
	p, _, err := adv.Problem(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := p.Model
	// Warm the memo so the measured path is the steady-state hit path.
	for stage := 0; stage < p.Stages; stage++ {
		for _, c := range p.Configs {
			model.Exec(stage, c)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, c := range p.Configs {
			model.Exec(0, c)
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized EXEC with calibration disabled allocates %v per run, want 0", allocs)
	}
}

// TestCalibrateRequiresSolution pins the error contract on partial
// recommendations.
func TestCalibrateRequiresSolution(t *testing.T) {
	_, adv := testAdvisor(t)
	if _, err := adv.Calibrate(nil, CalibrateOptions{}); err == nil {
		t.Error("Calibrate(nil) did not error")
	}
	if _, err := adv.Calibrate(&Recommendation{}, CalibrateOptions{}); err == nil {
		t.Error("Calibrate on a solution-less recommendation did not error")
	}
}

// TestRenderIncludesCalibration pins that a calibrated recommendation
// renders its calibration line.
func TestRenderIncludesCalibration(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t).Slice(0, 30)
	rec, err := adv.Recommend(w, Options{K: 1, Calibrate: &CalibrateOptions{Samples: 8, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Calibration == nil || len(rec.Calibration.Samples) == 0 {
		t.Fatalf("calibration not attached: %+v", rec.Calibration)
	}
	var sb strings.Builder
	rec.Render(&sb)
	if !strings.Contains(sb.String(), "calibration:") {
		t.Errorf("render missing calibration line:\n%s", sb.String())
	}
	// The monitor hook is optional; a nil monitor must not be required.
	var mon *calib.Monitor
	if _, err := adv.Calibrate(rec, CalibrateOptions{Samples: 4, Seed: 1, Monitor: mon}); err != nil {
		t.Errorf("Calibrate with nil monitor: %v", err)
	}
}
