package advisor

import (
	"context"
	"fmt"

	"dyndesign/internal/core"
	"dyndesign/internal/explain"
	"dyndesign/internal/obs"
)

// ExplainOptions configures the decision-provenance layer attached to a
// recommendation: the counterfactual k-sweep width, how many statements
// to credit per design change, and the overfitting audit's size and
// seed. The zero value asks for sensible defaults (sweep to k+2, top 3
// statements, 5 audit trials from seed 1).
type ExplainOptions struct {
	// KSweepDelta sweeps the cost-of-constraint curve to k + KSweepDelta
	// (default 2; negative disables the sweep).
	KSweepDelta int
	// TopStatements bounds the per-transition list of most-helped
	// statements (default 3).
	TopStatements int
	// AuditTrials is the number of perturbed trace replays in the
	// overfitting audit (default 5; negative disables the audit).
	AuditTrials int
	// AuditSeed derives the per-trial resampling seeds (default 1).
	AuditSeed int64
}

func (o ExplainOptions) withDefaults() ExplainOptions {
	if o.KSweepDelta == 0 {
		o.KSweepDelta = 2
	}
	if o.TopStatements == 0 {
		o.TopStatements = 3
	}
	if o.AuditTrials == 0 {
		o.AuditTrials = 5
	}
	if o.AuditSeed == 0 {
		o.AuditSeed = 1
	}
	return o
}

// sqlExcerptLen bounds the statement excerpt shown per stage impact.
const sqlExcerptLen = 48

// Explain builds the decision provenance of a solved recommendation:
// per-transition cost attribution, the counterfactual k-sweep, and the
// overfitting audit replaying the design against block-bootstrap
// resamples of the trace. The explanation is also stored on the
// recommendation. The audit re-solves perturbed problems with fresh
// what-if memos; expect it to dominate the explain cost.
func (a *Advisor) Explain(ctx context.Context, rec *Recommendation, opts ExplainOptions) (_ *explain.Explanation, err error) {
	sp := rec.opts.Tracer.Start("advisor.explain")
	defer func() { sp.End(obs.Bool("ok", err == nil)) }()
	if rec == nil || rec.Solution == nil {
		return nil, fmt.Errorf("advisor: no solved recommendation to explain")
	}
	opts = opts.withDefaults()
	eopts := explain.Options{
		Strategy:       rec.Rung,
		StructureNames: rec.StructureNames,
		StageInfo: func(stage int) (int, string) {
			seg := rec.Segments[stage]
			sql := ""
			if len(seg.Statements) > 0 {
				sql = seg.Statements[0].SQL
				if len(sql) > sqlExcerptLen {
					sql = sql[:sqlExcerptLen-3] + "..."
				}
			}
			return seg.Start, sql
		},
		KSweepDelta:    opts.KSweepDelta,
		TopStages:      opts.TopStatements,
		OracleStrategy: core.StrategyKAware,
	}
	if opts.AuditTrials > 0 {
		eopts.AuditTrials = opts.AuditTrials
		eopts.AuditSeed = opts.AuditSeed
		eopts.Perturb = a.perturb(rec)
	}
	e, err := explain.Build(ctx, rec.Problem, rec.Solution, eopts)
	if err != nil {
		return nil, err
	}
	rec.Explanation = e
	return e, nil
}

// perturb builds the audit's perturbation closure: trial seeds resample
// the workload block-wise (phase structure preserved) and the problem
// is re-assembled exactly as the original was — same design space,
// segmentation, bounds, and policy — with a fresh what-if memo.
func (a *Advisor) perturb(rec *Recommendation) explain.PerturbFunc {
	return func(trial int, seed int64) (*core.Problem, error) {
		w := rec.Workload.Resample(seed)
		p, _, err := a.Problem(w, rec.opts)
		if err != nil {
			return nil, fmt.Errorf("rebuilding problem for resample seed %d: %w", seed, err)
		}
		return p, nil
	}
}
