package advisor

import (
	"math/rand"
	"testing"

	"dyndesign/internal/core"
)

// memoTraceKeys builds the key population for the looping replay: a hot
// working set touched constantly (a periodic workload sliding through a
// window) plus a long cold tail of once-in-a-while segments.
func memoTraceKeys(n int) []execKey {
	keys := make([]execKey, n)
	for i := range keys {
		h := newFnv()
		h.u64(uint64(i) * 0x9E3779B97F4A7C15)
		keys[i] = execKey{seg: uint64(h), cfg: core.Config(uint64(i % 7))}
	}
	return keys
}

// replayMemo drives a memo with the looping trace: each step probes one
// key and fills it on a miss, exactly the Exec fast path.
func replayMemo(m *ExecMemo, hot, cold []execKey, steps int, seed int64) MemoStats {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		var k execKey
		if rng.Intn(10) < 9 {
			k = hot[rng.Intn(len(hot))]
		} else {
			k = cold[rng.Intn(len(cold))]
		}
		if _, ok := m.get(k); !ok {
			m.put(k, float64(i))
		}
	}
	return m.Stats()
}

// TestExecMemoCapBoundedUnder100kReplay is the regression for unbounded
// what-if memo growth: under a 100k-statement looping replay whose key
// population far exceeds the cap, the capped memo must stay within its
// bound, record its evictions, and — because the clock sweep gives the
// hot working set second chances — keep a hit rate close to the
// uncapped memo's.
func TestExecMemoCapBoundedUnder100kReplay(t *testing.T) {
	const (
		steps    = 100_000
		hotKeys  = 512
		coldKeys = 50_000
		capacity = 2048
	)
	hot := memoTraceKeys(hotKeys)
	cold := memoTraceKeys(hotKeys + coldKeys)[hotKeys:]

	uncapped := replayMemo(NewMemo(0), hot, cold, steps, 11)
	capped := replayMemo(NewMemo(capacity), hot, cold, steps, 11)

	if uncapped.Entries <= int64(capped.Capacity) {
		t.Fatalf("fixture too weak: uncapped memo holds %d entries, cap is %d — the cap never bites",
			uncapped.Entries, capped.Capacity)
	}
	if capped.Capacity < capacity {
		t.Fatalf("Capacity = %d, want >= requested %d", capped.Capacity, capacity)
	}
	if capped.Entries > int64(capped.Capacity) {
		t.Fatalf("capped memo occupancy %d exceeds bound %d", capped.Entries, capped.Capacity)
	}
	if capped.Evictions == 0 {
		t.Fatal("capped memo recorded no evictions under a trace exceeding its capacity")
	}
	if uncapped.Evictions != 0 {
		t.Fatalf("uncapped memo evicted %d entries", uncapped.Evictions)
	}
	// The floor is derived from the uncapped run: losing the cold tail
	// may cost hits, but the clock must preserve the hot set, which
	// carries ~90% of the probes.
	floor := 0.8 * uncapped.HitRate()
	if got := capped.HitRate(); got < floor {
		t.Fatalf("capped hit rate %.3f below floor %.3f (uncapped %.3f): eviction is destroying the working set",
			got, floor, uncapped.HitRate())
	}
	if capped.Lookups != steps || uncapped.Lookups != steps {
		t.Fatalf("lookup counters %d/%d, want %d", capped.Lookups, uncapped.Lookups, steps)
	}
}

// TestExecMemoClockPrefersHotEntries pins the second-chance property
// directly: with a shard full of referenced entries, the sweep clears
// ref bits on its first lap and evicts an unreferenced slot, never an
// entry probed since the last sweep.
func TestExecMemoClockPrefersHotEntries(t *testing.T) {
	// Capacity 64 gives exactly one slot per shard, so every insertion
	// beyond the first per shard must evict and the clock logic is
	// exercised on each one.
	m := NewMemo(64)
	keys := memoTraceKeys(512)
	for i, k := range keys {
		m.put(k, float64(i))
	}
	st := m.Stats()
	if st.Entries > int64(st.Capacity) {
		t.Fatalf("occupancy %d exceeds bound %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded with one slot per shard and 512 insertions")
	}
	// The most recently inserted key of some shard is referenced; it
	// must still be resident.
	last := keys[len(keys)-1]
	if _, ok := m.get(last); !ok {
		t.Fatal("most recent insertion already evicted")
	}
}

// TestExecMemoInvalidationOnWorldChange pins the generation check in
// isolation: a validate against a different world fingerprint purges
// every entry and counts one invalidation.
func TestExecMemoInvalidationOnWorldChange(t *testing.T) {
	m := NewMemo(0)
	m.validate(1)
	keys := memoTraceKeys(100)
	for i, k := range keys {
		m.put(k, float64(i))
	}
	m.validate(1) // same world: no-op
	if st := m.Stats(); st.Invalidations != 0 || st.Entries != 100 {
		t.Fatalf("same-world validate purged: %+v", st)
	}
	m.validate(2)
	st := m.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.Entries != 0 {
		t.Fatalf("entries after world change = %d, want 0", st.Entries)
	}
	if _, ok := m.get(keys[0]); ok {
		t.Fatal("stale entry served after world change")
	}
}

// TestAdvisorRetainedStateAcrossStatsRefresh is the end-to-end staleness
// regression of the satellite bugfixes: one advisor retaining a memo and
// a solve cache across recommendations must (a) serve an unchanged
// window entirely from the retained state and (b) discard ALL of it —
// memo entries and cost tables — the moment the table's histograms are
// mutated in place, because the fingerprints changed even though every
// pointer stayed the same.
func TestAdvisorRetainedStateAcrossStatsRefresh(t *testing.T) {
	_, adv := testAdvisor(t)
	w := testWorkload(t)
	opts := paperOpts(2)
	opts.Memo = NewMemo(0)
	opts.Cache = core.NewSolveCache()

	rec1, err := adv.Recommend(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Stats.WhatIfCalls == 0 {
		t.Fatal("first solve performed no what-if costings")
	}

	// Unchanged world: the re-solve must be served wholly from the
	// retained memo (zero fresh costings) and warm-start the cost tables
	// from the retained cache despite the model instance being new.
	rec2, err := adv.Recommend(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec2.Stats.WhatIfCalls; got != 0 {
		t.Fatalf("unchanged-window re-solve performed %d what-if costings, want 0 (memo not reused)", got)
	}
	if got := rec2.Problem.Metrics.MatrixBuilds(); got != 0 {
		t.Fatalf("unchanged-window re-solve built %d matrices, want 0 (cache not warm-started)", got)
	}
	if rec2.Problem.Metrics.MatrixReuses() == 0 {
		t.Fatal("unchanged-window re-solve recorded no matrix reuse")
	}
	if rec1.Solution.Cost != rec2.Solution.Cost {
		t.Fatalf("re-solve cost %v != first cost %v", rec2.Solution.Cost, rec1.Solution.Cost)
	}
	if st := opts.Memo.Stats(); st.Invalidations != 0 {
		t.Fatalf("unchanged world purged the memo: %+v", st)
	}

	// "Refresh the statistics": mutate the histograms in place — same
	// TableStats pointer, new contents. Both fingerprints must change.
	for _, cs := range adv.table.Stats.Columns {
		cs.NDV = cs.NDV/2 + 1
		if cs.Hist != nil {
			for i := range cs.Hist.Buckets {
				cs.Hist.Buckets[i].Count = cs.Hist.Buckets[i].Count*3 + 7
			}
		}
	}

	rec3, err := adv.Recommend(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := opts.Memo.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations after stats refresh = %d, want 1", st.Invalidations)
	}
	if got := rec3.Stats.WhatIfCalls; got == 0 {
		t.Fatal("post-refresh solve served stale memo entries (0 what-if costings)")
	}
	if got := rec3.Problem.Metrics.MatrixBuilds(); got != 1 {
		t.Fatalf("post-refresh solve built %d matrices, want 1 (stale tables replayed)", got)
	}
}
