package advisor

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"dyndesign/internal/calib"
	"dyndesign/internal/catalog"
	"dyndesign/internal/core"
	"dyndesign/internal/explain"
	"dyndesign/internal/workload"
)

// Recommendation is the output of an advisor run: the recommended design
// sequence plus everything needed to inspect, render, and apply it.
type Recommendation struct {
	Table          string
	StructureNames []string
	Structures     []catalog.IndexDef
	Segments       []workload.Segment
	Workload       *workload.Workload
	Problem        *core.Problem
	Solution       *core.Solution
	Strategy       core.Strategy
	Elapsed        time.Duration
	// Stats is the what-if costing instrumentation of the run: call
	// count and EXEC-memo hit rate. It makes costing-layer speedups
	// observable instead of asserted.
	Stats CostStats
	// MatrixBuilds and MatrixBuildTime describe the dense cost-table
	// evaluations the solver performed; concurrent builds accumulate
	// their individual durations. MatrixReuses counts the table reads
	// (solver fetches and cost replays) the solve cache served without
	// touching the model.
	MatrixBuilds    int64
	MatrixBuildTime time.Duration
	MatrixReuses    int64
	// Rung is the strategy that actually produced the solution: the
	// requested strategy on a clean solve, a lower ladder rung (or
	// core.RungLastKnownGood) when the resilient supervisor degraded.
	Rung core.Strategy
	// Degraded is true when the requested strategy did not answer and a
	// fallback rung did.
	Degraded bool
	// RungReports lists every rung the resilient supervisor attempted,
	// with the failure class and error of each one that did not answer.
	// Empty on the plain (unsupervised) solve path.
	RungReports []core.RungReport
	// Degradations, Cancellations, and RecoveredPanics are the
	// robustness ledger of the solve: rungs failed over, solves aborted
	// by context (deadline, cancel, or budget), and panics converted to
	// errors.
	Degradations    int64
	Cancellations   int64
	RecoveredPanics int64
	// Gap is the anytime optimality gap of the solution: zero when the
	// answering solver was exact (or proved its recombination optimal),
	// positive when a beam-pruned partitioned solve had to stop early —
	// the true optimum is then within [Cost-Gap, Cost].
	Gap float64
	// LatticeOverflows counts dense fallbacks for sub-problems whose
	// structure span exceeded the hypercube kernel's bit ceiling; see
	// core.ErrLatticeTooLarge for the actionable diagnostic.
	LatticeOverflows int64
	// Explanation is the decision provenance of the recommendation —
	// per-transition cost attribution, the counterfactual k-sweep, and
	// the overfitting audit. Populated by Advisor.Explain (or
	// automatically when Options.Explain is set); nil otherwise.
	Explanation *explain.Explanation
	// Calibration is the measured-vs-estimated replay report of this
	// recommendation. Populated by Advisor.Calibrate (or automatically
	// when Options.Calibrate is set); nil otherwise.
	Calibration *calib.RunReport

	// opts remembers the options the recommendation was solved under so
	// Explain can re-assemble identically-shaped problems for perturbed
	// traces.
	opts Options
}

// fillInstrumentation copies the costing-layer counters off the solved
// problem onto the recommendation.
func (r *Recommendation) fillInstrumentation(p *core.Problem) {
	if sp, ok := p.Model.(statsProvider); ok {
		r.Stats = sp.costStats()
	}
	r.MatrixBuilds = p.Metrics.MatrixBuilds()
	r.MatrixBuildTime = p.Metrics.MatrixBuildTime()
	r.MatrixReuses = p.Metrics.MatrixReuses()
	r.Degradations = p.Metrics.Degradations()
	r.Cancellations = p.Metrics.Cancellations()
	r.RecoveredPanics = p.Metrics.RecoveredPanics()
	r.LatticeOverflows = p.Metrics.LatticeOverflows()
	if r.Solution != nil {
		r.Gap = r.Solution.Gap
	}
}

// PerStatement expands the per-stage designs to one configuration per
// workload statement.
func (r *Recommendation) PerStatement() []core.Config {
	out := make([]core.Config, 0, r.Workload.Len())
	for i, seg := range r.Segments {
		for range seg.Statements {
			out = append(out, r.Solution.Designs[i])
		}
	}
	return out
}

// DesignAt returns the configuration recommended for statement index i.
func (r *Recommendation) DesignAt(i int) core.Config {
	for s, seg := range r.Segments {
		if i < seg.Start+len(seg.Statements) {
			return r.Solution.Designs[s]
		}
	}
	return r.Solution.Designs[len(r.Solution.Designs)-1]
}

// Step is one design change in a recommendation.
type Step struct {
	// StatementIndex is the workload position before which the change
	// happens; 0 means "before the first statement".
	StatementIndex int
	From, To       core.Config
	// DDL is the SQL to effect the change: drops first, then creates.
	DDL []string
}

// ddlFor builds the DDL statements for a configuration change.
func (r *Recommendation) ddlFor(from, to core.Config) []string {
	added, removed := from.Diff(to)
	var out []string
	for _, s := range removed {
		def := r.Structures[s]
		out = append(out, fmt.Sprintf("DROP INDEX %s ON %s", def.Name(), def.Table))
	}
	for _, s := range added {
		def := r.Structures[s]
		out = append(out, fmt.Sprintf("CREATE INDEX ON %s (%s)", def.Table, strings.Join(def.Columns, ", ")))
	}
	return out
}

// Steps lists every design change, including the initial installation
// (when the first design differs from C0) and the final teardown (when
// the problem constrains the destination).
func (r *Recommendation) Steps() []Step {
	var out []Step
	prev := r.Problem.Initial
	for s, cfg := range r.Solution.Designs {
		if cfg != prev {
			out = append(out, Step{
				StatementIndex: r.Segments[s].Start,
				From:           prev,
				To:             cfg,
				DDL:            r.ddlFor(prev, cfg),
			})
			prev = cfg
		}
	}
	if r.Problem.Final != nil && prev != *r.Problem.Final {
		out = append(out, Step{
			StatementIndex: r.Workload.Len(),
			From:           prev,
			To:             *r.Problem.Final,
			DDL:            r.ddlFor(prev, *r.Problem.Final),
		})
	}
	return out
}

// BlockDesigns summarizes the recommendation per workload label block —
// the shape of the paper's Table 2 design columns. Each entry covers the
// statements [Start, Start+Count) with a single block label; Design is
// the configuration in effect at the block start (designs are constant
// within a block whenever segmentation respected labels).
type BlockDesign struct {
	Block  workload.Block
	Design core.Config
}

// PerBlock returns the design in effect at the middle of every label
// block. Mid-block sampling is deliberate: with one stage per statement
// the optimal switch point can drift a statement or two around a block
// boundary (the boundary statements are random draws from either mix),
// while the mid-block design is the one that characterizes the block.
func (r *Recommendation) PerBlock() []BlockDesign {
	blocks := r.Workload.BlockLabels()
	out := make([]BlockDesign, len(blocks))
	for i, b := range blocks {
		out[i] = BlockDesign{Block: b, Design: r.DesignAt(b.Start + b.Count/2)}
	}
	return out
}

// RenderTimeline writes the design per fixed-size statement block — the
// shape of the paper's Table 2 — for any recommendation. Designs are
// sampled mid-block (see PerBlock). A blockSize <= 0 defaults to 1/30th
// of the workload (30 rows, like the paper's table).
func (r *Recommendation) RenderTimeline(w io.Writer, blockSize int) {
	n := r.Workload.Len()
	if blockSize <= 0 {
		blockSize = (n + 29) / 30
		if blockSize < 1 {
			blockSize = 1
		}
	}
	fmt.Fprintf(w, "%-16s %-6s %s\n", "statements", "mix", "design")
	for start := 0; start < n; start += blockSize {
		end := start + blockSize
		if end > n {
			end = n
		}
		label := ""
		if len(r.Workload.Labels) == n {
			label = r.Workload.Labels[start]
		}
		mid := start + (end-start)/2
		fmt.Fprintf(w, "%7d-%-8d %-6s %s\n", start+1, end, label,
			r.DesignAt(mid).Format(r.StructureNames))
	}
}

// Render writes a human-readable report.
func (r *Recommendation) Render(w io.Writer) {
	fmt.Fprintf(w, "Recommendation for table %q (strategy %s, %.1f ms)\n",
		r.Table, r.Strategy, float64(r.Elapsed.Microseconds())/1000)
	k := "unconstrained"
	if r.Problem.K != core.Unconstrained {
		k = fmt.Sprintf("%d", r.Problem.K)
	}
	fmt.Fprintf(w, "  stages: %d   candidate configs: %d   k: %s   policy: %s\n",
		r.Problem.Stages, len(r.Problem.Configs), k, r.Problem.Policy)
	fmt.Fprintf(w, "  estimated sequence cost: %.0f pages   changes used: %d\n",
		r.Solution.Cost, r.Solution.Changes)
	if r.Gap > 0 {
		fmt.Fprintf(w, "  anytime bound: optimum within %.0f pages (gap %.2f%% of cost)\n",
			r.Gap, 100*r.Gap/r.Solution.Cost)
	}
	if r.LatticeOverflows > 0 {
		fmt.Fprintf(w, "  note: %d dense-fallback table build(s) above the 20-bit lattice ceiling (see core.ErrLatticeTooLarge)\n",
			r.LatticeOverflows)
	}
	fmt.Fprintf(w, "  what-if calls: %d   cache hit rate: %.1f%%   matrix build: %.1f ms (%d builds, %d cached reads)\n",
		r.Stats.WhatIfCalls, 100*r.Stats.HitRate(),
		float64(r.MatrixBuildTime.Microseconds())/1000, r.MatrixBuilds, r.MatrixReuses)
	if r.Stats.PlanTableBuilds > 0 {
		fmt.Fprintf(w, "  plan tables: %d compiled (%.1f KiB retained)   batched lookups: %d\n",
			r.Stats.PlanTableBuilds, float64(r.Stats.PlanTableBytes)/1024, r.Stats.BatchedLookups)
	}
	r.RenderRobustness(w)
	steps := r.Steps()
	if len(steps) == 0 {
		fmt.Fprintf(w, "  design: %s for the entire workload (no changes)\n",
			r.Solution.Designs[0].Format(r.StructureNames))
	} else {
		fmt.Fprintf(w, "  design steps:\n")
		for _, s := range steps {
			fmt.Fprintf(w, "    @%-6d %s -> %s\n", s.StatementIndex,
				s.From.Format(r.StructureNames), s.To.Format(r.StructureNames))
			for _, ddl := range s.DDL {
				fmt.Fprintf(w, "             %s\n", ddl)
			}
		}
	}
	if r.Calibration != nil {
		c := r.Calibration
		fmt.Fprintf(w, "  calibration: %d sampled (%d DML skipped, %d errors)   median abs ratio %.2fx   bias %+.0f%%\n",
			len(c.Samples), c.SkippedDML, c.Errors,
			c.MedianAbsRatio(), 100*(math.Exp2(c.MeanSignedLog2())-1))
	}
	if r.Explanation != nil {
		r.Explanation.Render(w)
	}
}

// RenderRobustness writes the robustness ledger of the solve: the
// ladder rung that answered and every rung that failed before it, plus
// the degradation/cancellation/recovered-panic counters. It prints
// nothing for a clean unsupervised solve, and is safe to call on a
// partial recommendation (one whose Solution is nil after an
// interrupted or failed run).
func (r *Recommendation) RenderRobustness(w io.Writer) {
	if r.Degraded || r.Degradations > 0 || r.Cancellations > 0 || r.RecoveredPanics > 0 {
		fmt.Fprintf(w, "  robustness: degradations %d   cancellations %d   recovered panics %d\n",
			r.Degradations, r.Cancellations, r.RecoveredPanics)
	}
	if len(r.RungReports) == 0 {
		return
	}
	for _, rep := range r.RungReports {
		if rep.Err == nil {
			fmt.Fprintf(w, "    rung %-14s answered in %.1f ms\n",
				rep.Strategy, float64(rep.Elapsed.Microseconds())/1000)
			continue
		}
		fmt.Fprintf(w, "    rung %-14s failed (%s) after %.1f ms: %v\n",
			rep.Strategy, rep.Class, float64(rep.Elapsed.Microseconds())/1000, rep.Err)
	}
}
