package advisor

import (
	"fmt"

	"dyndesign/internal/calib"
)

// CalibrateOptions configures post-solve calibration: replay a sample
// of the recommendation's statements on the live engine under their
// recommended designs and compare measured page accesses with the
// what-if estimates the solve was justified by.
type CalibrateOptions struct {
	// Samples caps the number of statements replayed per
	// recommendation; <= 0 replays every eligible (SELECT) statement.
	Samples int
	// Seed drives the deterministic sampling permutation.
	Seed int64
	// Monitor, when non-nil, accumulates the run into cross-run
	// streaming statistics (quantiles, per-class/per-structure error,
	// drift trend). The run report is attached to the recommendation
	// either way.
	Monitor *calib.Monitor
}

// Calibrate replays a sample of the recommendation's workload on the
// advisor's database under the recommended per-statement designs and
// attaches the resulting calibration run report to the recommendation.
// The estimator is the advisor's own EXEC primitive, so the comparison
// is exactly "what the solver believed" against "what the engine did".
// The database's index set is restored before returning; only SELECT
// statements are executed, so the run never mutates rows.
func (a *Advisor) Calibrate(rec *Recommendation, opts CalibrateOptions) (*calib.RunReport, error) {
	if rec == nil || rec.Solution == nil {
		return nil, fmt.Errorf("advisor: calibrating a recommendation without a solution")
	}
	designs := rec.PerStatement()
	items := make([]calib.Item, len(rec.Workload.Statements))
	for i, s := range rec.Workload.Statements {
		items[i] = calib.Item{Stmt: s, Config: designs[i]}
	}
	rep, err := calib.Run(
		calib.Target{DB: a.db, Table: a.space.Table, Structures: a.space.Structures},
		items,
		a.StatementCost,
		calib.Options{Samples: opts.Samples, Seed: opts.Seed},
	)
	if err != nil {
		return rep, err
	}
	rec.Calibration = rep
	opts.Monitor.ObserveRun(rep)
	return rep, nil
}
