package advisor

import (
	"context"
	"fmt"
	"time"

	"dyndesign/internal/core"
	"dyndesign/internal/workload"
)

// The paper (§2) notes that instead of one representative trace, "one
// could require that a set of representative sequences be given". This
// file implements that formulation: RecommendMulti optimizes one design
// sequence against the *average* execution cost over several aligned
// traces, so the result reflects what is common to the traces rather
// than the noise of any one of them.

// averagedModel is a core.CostModel whose EXEC term is the mean over the
// per-trace what-if models. TRANS and SIZE are trace-independent (they
// depend only on the physical structures), so they come from the first
// model.
type averagedModel struct {
	models []core.CostModel
}

func (m *averagedModel) Exec(stage int, c core.Config) float64 {
	total := 0.0
	for _, sub := range m.models {
		total += sub.Exec(stage, c)
	}
	return total / float64(len(m.models))
}

func (m *averagedModel) Trans(from, to core.Config) float64 {
	return m.models[0].Trans(from, to)
}

func (m *averagedModel) Size(c core.Config) float64 {
	return m.models[0].Size(c)
}

// TakeErr implements core.FallibleModel: the first failure recorded by
// any fallible sub-model (all are drained).
func (m *averagedModel) TakeErr() error {
	var first error
	for _, sub := range m.models {
		if err := takeModelErr(sub); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// costStats implements statsProvider by summing over the per-trace
// models (sub-models that expose no stats contribute zero).
func (m *averagedModel) costStats() CostStats {
	var total CostStats
	for _, sub := range m.models {
		if sp, ok := sub.(statsProvider); ok {
			total = total.add(sp.costStats())
		}
	}
	return total
}

// RecommendMulti recommends one design sequence for a set of
// representative traces: the expected-cost variant of the constrained
// problem. All traces must have the same length and segment identically;
// stage i of the optimization covers statement i of every trace. The
// returned recommendation is annotated with the first trace (for block
// structure and rendering); its Solution.Cost is the mean cost across
// traces.
func (a *Advisor) RecommendMulti(traces []*workload.Workload, opts Options) (*Recommendation, error) {
	return a.RecommendMultiContext(context.Background(), traces, opts)
}

// RecommendMultiContext is RecommendMulti with cooperative
// cancellation.
func (a *Advisor) RecommendMultiContext(ctx context.Context, traces []*workload.Workload, opts Options) (*Recommendation, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("advisor: no traces given")
	}
	if len(traces) == 1 {
		return a.RecommendContext(ctx, traces[0], opts)
	}
	first, segs, err := a.Problem(traces[0], opts)
	if err != nil {
		return nil, err
	}
	avg := &averagedModel{models: []core.CostModel{first.Model}}
	for _, tr := range traces[1:] {
		if tr.Len() != traces[0].Len() {
			return nil, fmt.Errorf("advisor: trace %q has %d statements, %q has %d",
				tr.Name, tr.Len(), traces[0].Name, traces[0].Len())
		}
		p, pSegs, err := a.Problem(tr, opts)
		if err != nil {
			return nil, err
		}
		if p.Stages != first.Stages {
			return nil, fmt.Errorf("advisor: trace %q segments into %d stages, %q into %d",
				tr.Name, p.Stages, traces[0].Name, first.Stages)
		}
		_ = pSegs
		avg.models = append(avg.models, p.Model)
	}
	combined := *first
	combined.Model = avg

	strategy := opts.Strategy
	if strategy == "" {
		strategy = core.StrategyKAware
	}
	rec := &Recommendation{
		Table:          a.space.Table,
		StructureNames: a.space.StructureNames(),
		Structures:     a.space.Structures,
		Segments:       segs,
		Workload:       traces[0],
		Problem:        &combined,
		Strategy:       strategy,
	}
	start := time.Now()
	sol, err := a.solveProblem(ctx, &combined, strategy, opts, rec)
	rec.Elapsed = time.Since(start)
	rec.fillInstrumentation(&combined)
	if err != nil {
		return rec, err
	}
	rec.Solution = sol
	return rec, nil
}

// EvaluateOn computes the what-if cost of this recommendation's design
// sequence applied to a different workload of the same length — the
// generalization check of the paper's §6.3, without executing anything.
func (a *Advisor) EvaluateOn(rec *Recommendation, w *workload.Workload, opts Options) (float64, error) {
	if w.Len() != rec.Workload.Len() {
		return 0, fmt.Errorf("advisor: workload has %d statements, recommendation covers %d",
			w.Len(), rec.Workload.Len())
	}
	opts.SegmentSize = 1
	p, _, err := a.Problem(w, opts)
	if err != nil {
		return 0, err
	}
	designs := rec.PerStatement()
	return p.SequenceCost(designs), nil
}
