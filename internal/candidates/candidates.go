// Package candidates generates candidate index structures for a workload,
// in the spirit of the candidate-selection tools the paper builds on
// (Chaudhuri & Narasayya's index selection; index merging). The paper
// itself takes candidates as given ("we will not be concerned with the
// means by which they are determined"), so this package provides a
// reasonable, deterministic generator plus the explicit candidate lists
// used by the paper's experiments.
package candidates

import (
	"sort"
	"strings"

	"dyndesign/internal/catalog"
	"dyndesign/internal/sql"
	"dyndesign/internal/workload"
)

// Options configures candidate generation.
type Options struct {
	// MaxWidth caps the number of key columns per candidate (default 2).
	MaxWidth int
	// Limit caps the number of candidates (default 64, the configuration
	// bitset width).
	Limit int
}

func (o Options) withDefaults() Options {
	if o.MaxWidth <= 0 {
		o.MaxWidth = 2
	}
	if o.Limit <= 0 || o.Limit > 64 {
		o.Limit = 64
	}
	return o
}

// FromWorkload proposes candidate indexes for one table from the
// statements of a workload:
//
//  1. a single-column index for every column used in an equality or
//     range predicate;
//  2. a covering index per statement: predicate columns first, then the
//     other referenced columns (within MaxWidth);
//  3. merged indexes: for every ordered pair of single-column
//     candidates, their concatenation — the structure that lets one
//     index serve two different statement classes (seeks on the leading
//     column, covered scans for the second).
//
// Candidates are scored by how many statements reference their leading
// column, and the top Limit survive. Output order is deterministic:
// descending score, then name.
func FromWorkload(w *workload.Workload, table string, opts Options) []catalog.IndexDef {
	opts = opts.withDefaults()

	type info struct {
		def   catalog.IndexDef
		score int
	}
	colRefs := make(map[string]int) // leading-column reference counts
	seen := make(map[string]*info)
	add := func(cols []string) {
		if len(cols) == 0 || len(cols) > opts.MaxWidth {
			return
		}
		def := catalog.IndexDef{Table: table, Columns: cols}
		name := def.Name()
		if _, ok := seen[name]; !ok {
			seen[name] = &info{def: def}
		}
	}

	var singles []string
	singleSeen := make(map[string]bool)
	for _, stmt := range w.Statements {
		sel, ok := stmt.Stmt.(*sql.Select)
		if !ok || !strings.EqualFold(sel.Table, table) {
			continue
		}
		var predCols []string
		if sel.Where != nil {
			for _, c := range sel.Where.Conjuncts {
				col := strings.ToLower(c.Column)
				predCols = append(predCols, col)
				colRefs[col]++
				if !singleSeen[col] {
					singleSeen[col] = true
					singles = append(singles, col)
				}
				add([]string{col})
			}
		}
		// Covering candidate: predicate columns then remaining referenced
		// columns.
		var coverCols []string
		inCover := make(map[string]bool)
		for _, c := range predCols {
			if !inCover[c] {
				inCover[c] = true
				coverCols = append(coverCols, c)
			}
		}
		for _, c := range sel.ReferencedColumns() {
			if !inCover[c] {
				inCover[c] = true
				coverCols = append(coverCols, c)
			}
		}
		add(coverCols)
	}

	// Merged candidates over single-column seeds.
	sort.Strings(singles)
	for _, x := range singles {
		for _, y := range singles {
			if x != y {
				add([]string{x, y})
			}
		}
	}

	// Score and cap.
	out := make([]*info, 0, len(seen))
	for _, inf := range seen {
		inf.score = colRefs[strings.ToLower(inf.def.Columns[0])]
		out = append(out, inf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].def.Name() < out[j].def.Name()
	})
	if len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	defs := make([]catalog.IndexDef, len(out))
	for i, inf := range out {
		defs[i] = inf.def
	}
	return defs
}

// PaperStructures returns the six candidate structures of the paper's
// experiments: I(a), I(b), I(c), I(d), I(a,b), I(c,d).
func PaperStructures(table string) []catalog.IndexDef {
	mk := func(cols ...string) catalog.IndexDef {
		return catalog.IndexDef{Table: table, Columns: cols}
	}
	return []catalog.IndexDef{
		mk("a"), mk("b"), mk("c"), mk("d"), mk("a", "b"), mk("c", "d"),
	}
}
