package candidates

import (
	"testing"

	"dyndesign/internal/workload"
)

func wl(queries ...string) *workload.Workload {
	w := &workload.Workload{}
	for _, q := range queries {
		w.Append("", workload.MustStatement(q))
	}
	return w
}

func names(defs []interface{ Name() string }) []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Name()
	}
	return out
}

func hasCandidate(t *testing.T, w *workload.Workload, table, want string, opts Options) bool {
	t.Helper()
	for _, def := range FromWorkload(w, table, opts) {
		if def.Name() == want {
			return true
		}
	}
	return false
}

func TestSingleColumnCandidates(t *testing.T) {
	w := wl("SELECT a FROM t WHERE a = 1", "SELECT b FROM t WHERE b = 2")
	defs := FromWorkload(w, "t", Options{})
	got := make(map[string]bool)
	for _, d := range defs {
		got[d.Name()] = true
	}
	for _, want := range []string{"I(a)", "I(b)", "I(a,b)", "I(b,a)"} {
		if !got[want] {
			t.Errorf("missing candidate %s in %v", want, defs)
		}
	}
}

func TestCoveringCandidate(t *testing.T) {
	w := wl("SELECT b FROM t WHERE a = 1")
	if !hasCandidate(t, w, "t", "I(a,b)", Options{}) {
		t.Error("covering candidate I(a,b) missing")
	}
	if !hasCandidate(t, w, "t", "I(a)", Options{}) {
		t.Error("single-column candidate I(a) missing")
	}
}

func TestMaxWidthRespected(t *testing.T) {
	w := wl("SELECT b, c FROM t WHERE a = 1")
	for _, d := range FromWorkload(w, "t", Options{MaxWidth: 2}) {
		if len(d.Columns) > 2 {
			t.Errorf("candidate %s wider than MaxWidth", d.Name())
		}
	}
	// With width 3, the full covering index appears.
	if !hasCandidate(t, w, "t", "I(a,b,c)", Options{MaxWidth: 3}) {
		t.Error("3-wide covering candidate missing")
	}
}

func TestLimitAndScoring(t *testing.T) {
	// Column a dominates the workload; its candidates must survive a
	// tight limit.
	var queries []string
	for i := 0; i < 20; i++ {
		queries = append(queries, "SELECT a FROM t WHERE a = 1")
	}
	queries = append(queries, "SELECT z FROM t WHERE z = 1")
	w := wl(queries...)
	defs := FromWorkload(w, "t", Options{Limit: 2})
	if len(defs) != 2 {
		t.Fatalf("limit ignored: %v", defs)
	}
	for _, d := range defs {
		if d.Columns[0] != "a" {
			t.Errorf("top candidates should lead with a: %v", defs)
		}
	}
}

func TestOtherTablesIgnored(t *testing.T) {
	w := wl("SELECT a FROM t WHERE a = 1", "SELECT x FROM u WHERE x = 5")
	for _, d := range FromWorkload(w, "t", Options{}) {
		for _, c := range d.Columns {
			if c == "x" {
				t.Errorf("candidate %s references another table's column", d.Name())
			}
		}
	}
}

func TestRangePredicatesYieldCandidates(t *testing.T) {
	w := wl("SELECT p FROM t WHERE p >= 10 AND p < 20")
	if !hasCandidate(t, w, "t", "I(p)", Options{}) {
		t.Error("range predicate produced no candidate")
	}
}

func TestNoSelectNoCandidates(t *testing.T) {
	w := wl("INSERT INTO t VALUES (1)")
	if got := FromWorkload(w, "t", Options{}); len(got) != 0 {
		t.Errorf("candidates from DML only: %v", got)
	}
}

func TestDeterministicOrder(t *testing.T) {
	w := wl("SELECT a FROM t WHERE a = 1", "SELECT b FROM t WHERE b = 2", "SELECT c FROM t WHERE c = 3")
	a := FromWorkload(w, "t", Options{})
	b := FromWorkload(w, "t", Options{})
	if len(a) != len(b) {
		t.Fatal("nondeterministic candidate count")
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatal("nondeterministic candidate order")
		}
	}
}

func TestPaperStructures(t *testing.T) {
	defs := PaperStructures("t")
	want := []string{"I(a)", "I(b)", "I(c)", "I(d)", "I(a,b)", "I(c,d)"}
	if len(defs) != len(want) {
		t.Fatalf("structures = %v", defs)
	}
	for i, d := range defs {
		if d.Name() != want[i] || d.Table != "t" {
			t.Errorf("structure %d = %s", i, d.Name())
		}
	}
}
