package dyndesign

import (
	"context"
	"io"

	"dyndesign/internal/alerter"
	"dyndesign/internal/engine"
	"dyndesign/internal/tuner"
)

// This file exposes the toolkit's extensions beyond the paper: choosing
// the change bound k (the paper's first open question), monitoring for
// workload drift (the trigger the paper's §7 delegates to design
// alerters), multi-trace recommendations, and database snapshots.

// --- Choosing k -----------------------------------------------------------

// KPoint is one point of a k-selection curve.
type KPoint = tuner.KPoint

// KChoice reports a selected change bound and the curve behind it.
type KChoice = tuner.KChoice

// CrossValidateK chooses k by recommending on the first trace and
// validating on the others; it needs at least two representative traces.
func CrossValidateK(adv *Advisor, traces []*Workload, opts Options, maxK int) (*KChoice, error) {
	return tuner.CrossValidateK(context.Background(), adv, traces, opts, maxK)
}

// CrossValidateKContext is CrossValidateK with cooperative
// cancellation across the per-k recommendation sweep.
func CrossValidateKContext(ctx context.Context, adv *Advisor, traces []*Workload, opts Options, maxK int) (*KChoice, error) {
	return tuner.CrossValidateK(ctx, adv, traces, opts, maxK)
}

// ElbowK chooses k from a single trace: the smallest k capturing
// captureFrac of the improvement attainable between the static design
// and the unconstrained optimum (default 0.6 when <= 0).
func ElbowK(adv *Advisor, trace *Workload, opts Options, maxK int, captureFrac float64) (*KChoice, error) {
	return tuner.ElbowK(context.Background(), adv, trace, opts, maxK, captureFrac)
}

// ElbowKContext is ElbowK with cooperative cancellation across the
// per-k recommendation sweep.
func ElbowKContext(ctx context.Context, adv *Advisor, trace *Workload, opts Options, maxK int, captureFrac float64) (*KChoice, error) {
	return tuner.ElbowK(ctx, adv, trace, opts, maxK, captureFrac)
}

// --- Drift alerting ---------------------------------------------------------

// Alerter watches a statement stream and raises an alert when the
// installed design has drifted away from the recent workload — the
// signal to re-run the advisor.
type Alerter = alerter.Alerter

// Alert reports detected drift.
type Alert = alerter.Alert

// AlerterOptions tunes the drift alerter.
type AlerterOptions = alerter.Options

// NewAlerter builds a drift alerter over the advisor's design space.
func NewAlerter(adv *Advisor, configs []Config, current Config, opts AlerterOptions) (*Alerter, error) {
	return alerter.New(adv, configs, current, opts)
}

// --- Snapshots ---------------------------------------------------------------

// SaveDatabase writes a snapshot of the database.
func SaveDatabase(db *Database, w io.Writer) error { return db.Save(w) }

// LoadDatabase restores a database from a snapshot, rebuilding indexes
// and statistics.
func LoadDatabase(r io.Reader) (*Database, error) { return engine.Load(r) }

// --- Multi-trace -----------------------------------------------------------

// RecommendMulti recommends one design sequence against the average cost
// over several aligned representative traces (the §2 alternative input
// formulation).
func RecommendMulti(adv *Advisor, traces []*Workload, opts Options) (*Recommendation, error) {
	return adv.RecommendMulti(traces, opts)
}

// EvaluateRecommendationOn costs a recommendation's design sequence
// against a different workload of the same length, without executing it.
func EvaluateRecommendationOn(adv *Advisor, rec *Recommendation, w *Workload, opts Options) (float64, error) {
	return adv.EvaluateOn(rec, w, opts)
}
